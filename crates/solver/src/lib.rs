//! A from-scratch bitvector + array constraint solver.
//!
//! This crate stands in for the STP/Z3 solver underneath KLEE in the
//! original system. The pipeline is classical:
//!
//! 1. [`expr`] — a hash-consed expression DAG over bitvectors, booleans,
//!    and arrays (`Read`/`Write` nodes exactly as the paper's §3.2 figures
//!    draw them), with algebraic simplification ([`simplify`]) applied at
//!    construction.
//! 2. [`arrays`] — array-theory elimination: `Read(Write(...))` chains
//!    become ITE chains and base-array reads become fresh variables with
//!    per-index axioms. The cost of this step grows with the two quantities
//!    §3.3.1 identifies — write-chain length and array size — which is what
//!    makes solver stalls (and their elimination by recorded data values)
//!    faithful to the paper.
//! 3. [`bitblast`] + [`cnf`] — Tseitin conversion of the pure bitvector
//!    formula to CNF.
//! 4. [`sat`] — a CDCL SAT solver (two-watched literals, VSIDS, phase
//!    saving, Luby restarts, first-UIP learning) with a deterministic
//!    conflict budget standing in for the paper's 30-second wall-clock
//!    timeout.
//! 5. [`inc`] — the incremental engine: persistent elimination/bit-blast
//!    caches and a persistent CDCL instance for the monotonically growing
//!    constraint prefixes shepherded symbolic execution produces.
//! 6. [`solve`] — the façade: assert booleans, check, extract models, and
//!    evaluate expressions under a model.
//!
//! # Example
//!
//! ```
//! use er_solver::expr::{BvOp, CmpKind, ExprPool};
//! use er_solver::solve::{Budget, SatResult, Solver};
//!
//! let mut pool = ExprPool::new();
//! let x = pool.var("x", 32);
//! let seven = pool.bv_const(7, 32);
//! let sum = pool.bin(BvOp::Add, x, seven);
//! let target = pool.bv_const(50, 32);
//! let eq = pool.cmp(CmpKind::Eq, sum, target);
//!
//! let mut solver = Solver::new(&mut pool);
//! solver.assert(eq);
//! let SatResult::Sat(model) = solver.check(&Budget::default()) else {
//!     panic!("satisfiable");
//! };
//! assert_eq!(model.eval(&pool, x), 43);
//! ```

pub mod arrays;
pub mod bitblast;
pub mod cancel;
pub mod cnf;
pub mod expr;
pub mod inc;
pub mod sat;
pub mod simplify;
pub mod solve;

pub use expr::{ArrayRef, BvOp, CmpKind, ExprPool, ExprRef, Sort};
pub use inc::IncrementalSolver;
pub use solve::{Budget, Model, SatResult, Solver};
