//! Algebraic simplification rules applied by [`ExprPool`] constructors.
//!
//! Folding keeps the DAG small during shepherded symbolic execution — on a
//! mostly-concrete path (the common case once key data values are recorded)
//! almost everything folds away and the solver is never invoked, which is
//! exactly why recording a handful of values collapses the paper's stalls.

use crate::expr::{ArrayNode, BvOp, CmpKind, ExprPool, ExprRef, Node, Sort};

/// Folds a binary bitvector operation if a rule applies.
pub fn fold_bin(pool: &mut ExprPool, op: BvOp, a: ExprRef, b: ExprRef) -> Option<ExprRef> {
    let bits = pool.sort(a).bits();
    let ca = pool.as_const(a);
    let cb = pool.as_const(b);
    if let (Some(x), Some(y)) = (ca, cb) {
        return Some(pool.bv_const(op.eval(bits, x, y), bits));
    }
    match (op, ca, cb) {
        // x + 0, x - 0, x | 0, x ^ 0, x << 0, x >> 0
        (
            BvOp::Add | BvOp::Sub | BvOp::Or | BvOp::Xor | BvOp::Shl | BvOp::LShr | BvOp::AShr,
            _,
            Some(0),
        ) => Some(a),
        // 0 + x, 0 | x, 0 ^ x
        (BvOp::Add | BvOp::Or | BvOp::Xor, Some(0), _) => Some(b),
        // x * 0, 0 * x, x & 0, 0 & x, 0 << x, 0 >> x, 0 / x, 0 % x
        (BvOp::Mul | BvOp::And, _, Some(0))
        | (BvOp::Mul | BvOp::And | BvOp::Shl | BvOp::LShr | BvOp::UDiv | BvOp::URem, Some(0), _) => {
            Some(pool.bv_const(0, bits))
        }
        // x * 1, 1 * x, x / 1
        (BvOp::Mul | BvOp::UDiv, _, Some(1)) => Some(a),
        (BvOp::Mul, Some(1), _) => Some(b),
        // x % 1
        (BvOp::URem, _, Some(1)) => Some(pool.bv_const(0, bits)),
        // x & all-ones, all-ones & x
        (BvOp::And, _, Some(m)) if m == Sort::Bv(bits).mask() => Some(a),
        (BvOp::And, Some(m), _) if m == Sort::Bv(bits).mask() => Some(b),
        // x | all-ones
        (BvOp::Or, _, Some(m)) | (BvOp::Or, Some(m), _) if m == Sort::Bv(bits).mask() => {
            Some(pool.bv_const(m, bits))
        }
        _ => {
            if a == b {
                match op {
                    BvOp::Sub | BvOp::Xor => Some(pool.bv_const(0, bits)),
                    BvOp::And | BvOp::Or => Some(a),
                    _ => None,
                }
            } else {
                None
            }
        }
    }
}

/// Folds a comparison if a rule applies.
pub fn fold_cmp(pool: &mut ExprPool, op: CmpKind, a: ExprRef, b: ExprRef) -> Option<ExprRef> {
    let bits = pool.sort(a).bits();
    if let (Some(x), Some(y)) = (pool.as_const(a), pool.as_const(b)) {
        return Some(pool.bool_const(op.eval(bits, x, y)));
    }
    if a == b {
        return Some(pool.bool_const(matches!(op, CmpKind::Eq | CmpKind::Ule | CmpKind::Sle)));
    }
    match (op, pool.as_const(b)) {
        // unsigned x < 0 is false; x <= max is true; x >= 0 via Ule(0, x).
        (CmpKind::Ult, Some(0)) => Some(pool.bool_const(false)),
        (CmpKind::Ule, Some(m)) if m == Sort::Bv(bits).mask() => Some(pool.bool_const(true)),
        _ => match (op, pool.as_const(a)) {
            (CmpKind::Ule, Some(0)) => Some(pool.bool_const(true)),
            (CmpKind::Ult, Some(m)) if m == Sort::Bv(bits).mask() => Some(pool.bool_const(false)),
            _ => None,
        },
    }
}

/// Folds `Read(arr, index)` when it can be resolved without the solver:
/// walks the store chain as long as indices compare concretely, and reads
/// base-array initial contents for concrete indices.
pub fn fold_read(
    pool: &mut ExprPool,
    arr: crate::expr::ArrayRef,
    index: ExprRef,
) -> Option<ExprRef> {
    let idx = pool.as_const(index)?;
    let mut cur = arr;
    loop {
        match pool.array_node(cur).clone() {
            ArrayNode::Store {
                arr: below,
                index: si,
                value,
            } => {
                match pool.as_const(si) {
                    Some(s) if s == idx => return Some(value),
                    Some(_) => cur = below, // definitely a different slot
                    None => return None,    // symbolic store index: can't skip
                }
            }
            ArrayNode::Base(id) => {
                let decl = pool.array_decl(id);
                if idx >= decl.len {
                    // Out-of-range reads are left symbolic; the memory model
                    // upstream faults before building them, but stay safe.
                    return None;
                }
                let bits = decl.elem_bits;
                let v = decl
                    .init
                    .as_ref()
                    .map(|init| init.get(idx as usize).copied().unwrap_or(0))
                    .unwrap_or(0);
                return Some(pool.bv_const(v, bits));
            }
        }
    }
}

/// Recursively evaluates `e` with every variable bound by `lookup` and
/// arrays resolved against their declared initial contents. Used by model
/// validation and property tests; not a hot path.
pub fn eval_concrete(
    pool: &ExprPool,
    e: ExprRef,
    lookup: &dyn Fn(crate::expr::VarId) -> u64,
) -> u64 {
    match pool.node(e) {
        Node::Const { value, .. } => *value,
        Node::BoolConst(b) => u64::from(*b),
        Node::Var { id, bits } => lookup(*id) & Sort::Bv(*bits).mask(),
        Node::Bin { op, a, b } => {
            let bits = pool.sort(*a).bits();
            op.eval(
                bits,
                eval_concrete(pool, *a, lookup),
                eval_concrete(pool, *b, lookup),
            )
        }
        Node::Cmp { op, a, b } => {
            let bits = pool.sort(*a).bits();
            u64::from(op.eval(
                bits,
                eval_concrete(pool, *a, lookup),
                eval_concrete(pool, *b, lookup),
            ))
        }
        Node::Not(a) => u64::from(eval_concrete(pool, *a, lookup) == 0),
        Node::AndB(a, b) => {
            u64::from(eval_concrete(pool, *a, lookup) != 0 && eval_concrete(pool, *b, lookup) != 0)
        }
        Node::OrB(a, b) => {
            u64::from(eval_concrete(pool, *a, lookup) != 0 || eval_concrete(pool, *b, lookup) != 0)
        }
        Node::Ite {
            cond,
            then_e,
            else_e,
        } => {
            if eval_concrete(pool, *cond, lookup) != 0 {
                eval_concrete(pool, *then_e, lookup)
            } else {
                eval_concrete(pool, *else_e, lookup)
            }
        }
        Node::ZExt { a, .. } => eval_concrete(pool, *a, lookup),
        Node::Trunc { a, bits } => eval_concrete(pool, *a, lookup) & Sort::Bv(*bits).mask(),
        Node::BoolToBv { a, bits } => {
            u64::from(eval_concrete(pool, *a, lookup) != 0) & Sort::Bv(*bits).mask()
        }
        Node::Read { arr, index } => {
            let idx = eval_concrete(pool, *index, lookup);
            eval_array(pool, *arr, idx, lookup)
        }
    }
}

fn eval_array(
    pool: &ExprPool,
    arr: crate::expr::ArrayRef,
    idx: u64,
    lookup: &dyn Fn(crate::expr::VarId) -> u64,
) -> u64 {
    match pool.array_node(arr) {
        ArrayNode::Store { arr, index, value } => {
            if eval_concrete(pool, *index, lookup) == idx {
                eval_concrete(pool, *value, lookup)
            } else {
                eval_array(pool, *arr, idx, lookup)
            }
        }
        ArrayNode::Base(id) => {
            let decl = pool.array_decl(*id);
            decl.init
                .as_ref()
                .map(|init| init.get(idx as usize).copied().unwrap_or(0))
                .unwrap_or(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ExprPool;

    #[test]
    fn identity_rules() {
        let mut p = ExprPool::new();
        let x = p.var("x", 32);
        let zero = p.bv_const(0, 32);
        let one = p.bv_const(1, 32);
        assert_eq!(p.bin(BvOp::Add, x, zero), x);
        assert_eq!(p.bin(BvOp::Mul, x, one), x);
        let mul0 = p.bin(BvOp::Mul, x, zero);
        assert_eq!(p.as_const(mul0), Some(0));
    }

    #[test]
    fn self_rules() {
        let mut p = ExprPool::new();
        let x = p.var("x", 32);
        let sub = p.bin(BvOp::Sub, x, x);
        assert_eq!(p.as_const(sub), Some(0));
        let and = p.bin(BvOp::And, x, x);
        assert_eq!(and, x);
        let eq = p.cmp(CmpKind::Eq, x, x);
        assert_eq!(p.as_const(eq), Some(1));
    }

    #[test]
    fn unsigned_bounds() {
        let mut p = ExprPool::new();
        let x = p.var("x", 8);
        let zero = p.bv_const(0, 8);
        let max = p.bv_const(0xff, 8);
        let lt0 = p.cmp(CmpKind::Ult, x, zero);
        assert_eq!(p.as_const(lt0), Some(0));
        let lemax = p.cmp(CmpKind::Ule, x, max);
        assert_eq!(p.as_const(lemax), Some(1));
    }

    #[test]
    fn eval_concrete_matches_ops() {
        let mut p = ExprPool::new();
        let x = p.var("x", 16);
        let y = p.var("y", 16);
        let s = p.bin(BvOp::Mul, x, y);
        let c = p.cmp(CmpKind::Ult, s, x);
        let v = eval_concrete(&p, c, &|_| 300);
        // 300*300 = 90000 & 0xffff = 24464; 24464 < 300 is false.
        assert_eq!(v, 0);
    }

    #[test]
    fn eval_reads_through_stores() {
        let mut p = ExprPool::new();
        let arr = p.array("A", 8, 32, Some(vec![1, 2, 3, 4, 5, 6, 7, 8]));
        let i = p.var("i", 64);
        let v99 = p.bv_const(99, 32);
        let w = p.write(arr, i, v99);
        let j = p.bv_const(3, 64);
        let r = p.read(w, j);
        // With i = 3 the store hits; with i = 0 it misses.
        assert_eq!(eval_concrete(&p, r, &|_| 3), 99);
        assert_eq!(eval_concrete(&p, r, &|_| 0), 4);
    }
}
