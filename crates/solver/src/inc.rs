//! Incremental lowering + SAT engine.
//!
//! Shepherded symbolic execution issues thousands of queries over a path
//! condition that only ever *grows*: each query is `prefix + assumptions`
//! where the prefix extends the previous query's prefix. The engine
//! exploits that monotonicity end to end:
//!
//! - **Array elimination** results are cached per [`ExprRef`] in a
//!   persistent [`Eliminator`]; a constraint is rewritten once, ever.
//! - **Bit-blasting** keeps its Tseitin cache and a single growing CNF in a
//!   persistent [`BitBlaster`].
//! - **CDCL state** (clause database, learned clauses, VSIDS activity,
//!   saved phases) lives in a persistent [`SatSolver`] fed only the *new*
//!   clauses each query.
//!
//! Assumptions must not contaminate the persistent state: their lowering
//! runs inside a scope that is rolled back afterwards (the in-bounds axiom
//! an array read emits is a real constraint, so even "definitional" output
//! is undone), and their clauses go into a throwaway *clone* of the
//! persistent solver — the clone inherits the learned clauses for free and
//! is discarded after the query.
//!
//! Budget accounting is designed to match a fresh per-query solver: cell
//! counts are cumulative over the deduplicated constraint set (exactly what
//! a fresh whole-query elimination would count), the clause budget checks
//! the full CNF extent, and the conflict budget is per call. Stall points
//! therefore land in the same place in either mode, which keeps
//! reproduction results identical. The one intentional divergence: learned
//! clauses can steer the incremental search through *fewer* conflicts than
//! a fresh search, so conflict-budget stalls may differ — conflict budgets
//! are orders of magnitude above what the workloads reach.

use crate::arrays::Eliminator;
use crate::bitblast::BitBlaster;
use crate::expr::{ExprPool, ExprRef};
use crate::sat::{SatOutcome, SatSolver};
use crate::solve::{Budget, Model, SatResult, SolveStats, StallReason};

/// Persistent solver state for a monotonically growing constraint prefix.
#[derive(Debug, Clone)]
pub struct IncrementalSolver {
    /// The constraint prefix already validated and (where non-constant)
    /// lowered. Queries whose constraint slice does not extend this prefix
    /// reset the engine.
    prefix: Vec<ExprRef>,
    elim: Eliminator,
    blast: BitBlaster,
    sat: SatSolver,
    /// Clauses of `blast.cnf` already fed to `sat`.
    fed: usize,
    last_stats: SolveStats,
}

impl Default for IncrementalSolver {
    fn default() -> Self {
        IncrementalSolver::new()
    }
}

impl IncrementalSolver {
    /// An engine with empty persistent state.
    pub fn new() -> Self {
        IncrementalSolver {
            prefix: Vec::new(),
            elim: Eliminator::new(),
            blast: BitBlaster::new(),
            sat: SatSolver::empty(),
            fed: 0,
            last_stats: SolveStats::default(),
        }
    }

    fn reset(&mut self) {
        *self = IncrementalSolver::new();
    }

    /// Checks `constraints` under `budget`, reusing all lowering and search
    /// state from previous calls whose constraints form a prefix of this
    /// call's.
    pub fn check(
        &mut self,
        pool: &mut ExprPool,
        constraints: &[ExprRef],
        budget: &Budget,
    ) -> SatResult {
        self.check_assuming(pool, constraints, &[], budget)
    }

    /// Checks `constraints + assumptions` under `budget` without retaining
    /// the assumptions in any persistent state.
    pub fn check_assuming(
        &mut self,
        pool: &mut ExprPool,
        constraints: &[ExprRef],
        assumptions: &[ExprRef],
        budget: &Budget,
    ) -> SatResult {
        let _span = er_telemetry::span!("solver.query");
        let (result, hits, misses, reused) =
            self.check_assuming_inner(pool, constraints, assumptions, budget);
        if er_telemetry::enabled() {
            // One batched update per query: the lowering pipeline itself
            // runs uninstrumented.
            er_telemetry::counter!("solver.queries").incr();
            er_telemetry::counter!("solver.work_units").add(self.last_stats.work_units());
            er_telemetry::counter!("solver.array_cells").add(self.last_stats.array_cells);
            er_telemetry::counter!("solver.cnf_clauses").add(self.last_stats.cnf_clauses as u64);
            er_telemetry::counter!("solver.cache_hits").add(hits);
            er_telemetry::counter!("solver.cache_misses").add(misses);
            er_telemetry::counter!("solver.clauses_reused").add(reused);
            if matches!(result, SatResult::Unknown(_)) {
                er_telemetry::counter!("solver.stalls").incr();
            }
        }
        result
    }

    /// Returns (result, cache_hits, cache_misses, clauses_reused).
    fn check_assuming_inner(
        &mut self,
        pool: &mut ExprPool,
        constraints: &[ExprRef],
        assumptions: &[ExprRef],
        budget: &Budget,
    ) -> (SatResult, u64, u64, u64) {
        self.last_stats = SolveStats::default();

        // Prefix validation: reuse everything if this call extends the
        // previous constraint slice, otherwise start over.
        if self.prefix.len() > constraints.len()
            || self.prefix.iter().zip(constraints).any(|(&p, &c)| p != c)
        {
            self.reset();
        }
        let hits = self.prefix.len() as u64;
        let mut misses = 0u64;

        // Constant-fold scan first, exactly like a fresh solver: a
        // constant-false anywhere decides the query before any lowering.
        let new = &constraints[self.prefix.len()..];
        if new
            .iter()
            .chain(assumptions)
            .any(|&e| pool.as_const(e) == Some(0))
        {
            return (SatResult::Unsat, hits, misses, 0);
        }
        let assum_pending: Vec<ExprRef> = assumptions
            .iter()
            .copied()
            .filter(|&a| pool.as_const(a).is_none())
            .collect();

        // Lower the new constraints, each inside a scope that is committed
        // on success. A failed constraint is rolled back wholesale so a
        // retry observes the same budget trip point a fresh solver would.
        for &c in &constraints[self.prefix.len()..] {
            if pool.as_const(c).is_some() {
                self.prefix.push(c); // constant-true: nothing to lower
                continue;
            }
            misses += 1;
            self.elim.begin_scope();
            self.blast.begin_scope();
            match self.lower(pool, c, budget) {
                Ok(()) => {
                    self.elim.commit_scope();
                    self.blast.commit_scope();
                    self.prefix.push(c);
                }
                Err(reason) => {
                    self.fill_stall_stats(&reason);
                    self.elim.rollback_scope();
                    self.blast.rollback_scope();
                    return (SatResult::Unknown(reason), hits, misses, 0);
                }
            }
            let clauses = self.blast.cnf.clause_count();
            if clauses > budget.max_clauses {
                self.last_stats.cnf_clauses = clauses;
                return (
                    SatResult::Unknown(StallReason::Clauses { clauses }),
                    hits,
                    misses,
                    0,
                );
            }
        }
        // The CNF never shrinks, so a clause-budget trip from an earlier
        // query must keep tripping (as re-running a fresh solver would).
        let committed_clauses = self.blast.cnf.clause_count();
        if committed_clauses > budget.max_clauses {
            self.last_stats.cnf_clauses = committed_clauses;
            return (
                SatResult::Unknown(StallReason::Clauses {
                    clauses: committed_clauses,
                }),
                hits,
                misses,
                0,
            );
        }

        // Everything constant-folded away: trivially satisfiable.
        if committed_clauses == 0 && assum_pending.is_empty() {
            return (SatResult::Sat(Model::default()), hits, misses, 0);
        }

        self.feed();

        if assum_pending.is_empty() {
            let before = self.sat.stats();
            let outcome = self.sat.solve(budget.max_conflicts);
            self.last_stats.array_cells = self.elim.stats().cells;
            self.last_stats.stores_traversed = self.elim.stats().stores_traversed;
            self.last_stats.cnf_vars = self.blast.cnf.var_count();
            self.last_stats.cnf_clauses = committed_clauses;
            self.last_stats.conflicts = self.sat.stats().conflicts - before.conflicts;
            self.last_stats.propagations = self.sat.stats().propagations - before.propagations;
            let result = self.finish(pool, outcome, constraints, &[]);
            return (result, hits, misses, 0);
        }

        // Assumption query: lower inside a rollback scope, solve on a
        // throwaway clone of the persistent solver (which carries the
        // learned clauses along).
        misses += assum_pending.len() as u64;
        self.elim.begin_scope();
        self.blast.begin_scope();
        for &a in &assum_pending {
            if let Err(reason) = self.lower(pool, a, budget) {
                self.fill_stall_stats(&reason);
                self.elim.rollback_scope();
                self.blast.rollback_scope();
                return (SatResult::Unknown(reason), hits, misses, 0);
            }
            let clauses = self.blast.cnf.clause_count();
            if clauses > budget.max_clauses {
                self.last_stats.cnf_clauses = clauses;
                self.elim.rollback_scope();
                self.blast.rollback_scope();
                return (
                    SatResult::Unknown(StallReason::Clauses { clauses }),
                    hits,
                    misses,
                    0,
                );
            }
        }

        let mut probe = self.sat.clone();
        let reused = probe.clause_count() as u64;
        probe.ensure_vars(self.blast.cnf.var_count() as usize);
        for cl in &self.blast.cnf.clauses[self.fed..] {
            probe.push_clause(cl);
        }
        let before = self.sat.stats();
        let outcome = probe.solve(budget.max_conflicts);
        self.last_stats.array_cells = self.elim.stats().cells;
        self.last_stats.stores_traversed = self.elim.stats().stores_traversed;
        self.last_stats.cnf_vars = self.blast.cnf.var_count();
        self.last_stats.cnf_clauses = self.blast.cnf.clause_count();
        self.last_stats.conflicts = probe.stats().conflicts - before.conflicts;
        self.last_stats.propagations = probe.stats().propagations - before.propagations;
        // Extract the model while the scope's var_bits entries still exist.
        let result = self.finish(pool, outcome, constraints, &assum_pending);
        self.elim.rollback_scope();
        self.blast.rollback_scope();
        (result, hits, misses, reused)
    }

    /// Rewrites one boolean constraint and asserts it (plus any array
    /// axioms it spawned) into the CNF.
    fn lower(
        &mut self,
        pool: &mut ExprPool,
        e: ExprRef,
        budget: &Budget,
    ) -> Result<(), StallReason> {
        let mut axioms = Vec::new();
        let flat = self
            .elim
            .rewrite(pool, e, budget.max_array_cells, &mut axioms)
            .map_err(|err| StallReason::ArrayCells { cells: err.cells })?;
        if let Err(err) = self.blast.assert_true(pool, flat) {
            unreachable!("arrays were eliminated: {err}");
        }
        for ax in axioms {
            if let Err(err) = self.blast.assert_true(pool, ax) {
                unreachable!("axioms are array-free: {err}");
            }
        }
        Ok(())
    }

    fn fill_stall_stats(&mut self, reason: &StallReason) {
        if let StallReason::ArrayCells { cells } = reason {
            self.last_stats.array_cells = *cells;
        }
    }

    /// Feeds clauses added since the last call into the persistent solver.
    fn feed(&mut self) {
        self.sat.ensure_vars(self.blast.cnf.var_count() as usize);
        for cl in &self.blast.cnf.clauses[self.fed..] {
            self.sat.push_clause(cl);
        }
        self.fed = self.blast.cnf.clauses.len();
    }

    fn finish(
        &self,
        pool: &ExprPool,
        outcome: SatOutcome,
        constraints: &[ExprRef],
        assumptions: &[ExprRef],
    ) -> SatResult {
        match outcome {
            SatOutcome::Sat(assignment) => {
                let mut model = Model::default();
                for (id, bits) in self.blast.var_bits() {
                    let mut v = 0u64;
                    for (i, var) in bits.iter().enumerate() {
                        if assignment.get(var.0 as usize).copied().unwrap_or_default() {
                            v |= 1 << i;
                        }
                    }
                    model.set(*id, v);
                }
                debug_assert!(
                    constraints
                        .iter()
                        .chain(assumptions)
                        .all(|&a| model.eval_bool(pool, a)),
                    "model must satisfy the asserted formula"
                );
                SatResult::Sat(model)
            }
            SatOutcome::Unsat => SatResult::Unsat,
            // An Unknown with a tripped watchdog token is a cancellation,
            // not a budget exhaustion — the distinction matters upstream
            // (cancelled sessions re-queue with escalated budgets; stalled
            // ones reinstrument).
            SatOutcome::Unknown if crate::cancel::cancelled() => {
                SatResult::Unknown(StallReason::Cancelled)
            }
            SatOutcome::Unknown => SatResult::Unknown(StallReason::Conflicts {
                conflicts: self.last_stats.conflicts,
            }),
        }
    }

    /// Work counters from the most recent check, mirroring what a fresh
    /// whole-query solver would report (cells and clauses are cumulative
    /// over the deduplicated constraint set; conflicts are per call).
    pub fn last_stats(&self) -> SolveStats {
        self.last_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BvOp, CmpKind};

    fn fresh_verdict(pool: &mut ExprPool, cs: &[ExprRef], assume: &[ExprRef]) -> SatResult {
        IncrementalSolver::new().check_assuming(pool, cs, assume, &Budget::default())
    }

    fn same_verdict(a: &SatResult, b: &SatResult) -> bool {
        matches!(
            (a, b),
            (SatResult::Sat(_), SatResult::Sat(_))
                | (SatResult::Unsat, SatResult::Unsat)
                | (SatResult::Unknown(_), SatResult::Unknown(_))
        )
    }

    #[test]
    fn growing_prefix_reuses_lowering() {
        let mut pool = ExprPool::new();
        let x = pool.var("x", 16);
        let y = pool.var("y", 16);
        let ten = pool.bv_const(10, 16);
        let fifty = pool.bv_const(50, 16);
        let c1 = pool.cmp(CmpKind::Ult, x, fifty);
        let sum = pool.bin(BvOp::Add, x, y);
        let c2 = pool.cmp(CmpKind::Eq, sum, fifty);
        let c3 = pool.cmp(CmpKind::Ult, ten, x);

        let mut inc = IncrementalSolver::new();
        let b = Budget::default();
        assert!(matches!(inc.check(&mut pool, &[c1], &b), SatResult::Sat(_)));
        let clauses_after_c1 = inc.blast.cnf.clause_count();
        assert!(matches!(
            inc.check(&mut pool, &[c1, c2], &b),
            SatResult::Sat(_)
        ));
        assert!(inc.blast.cnf.clause_count() > clauses_after_c1);
        assert!(matches!(
            inc.check(&mut pool, &[c1, c2, c3], &b),
            SatResult::Sat(_)
        ));
        // Re-checking the same slice lowers nothing new.
        let clauses = inc.blast.cnf.clause_count();
        assert!(matches!(
            inc.check(&mut pool, &[c1, c2, c3], &b),
            SatResult::Sat(_)
        ));
        assert_eq!(inc.blast.cnf.clause_count(), clauses);
    }

    #[test]
    fn assumptions_do_not_leak_into_persistent_state() {
        let mut pool = ExprPool::new();
        let x = pool.var("x", 8);
        let one = pool.bv_const(1, 8);
        let two = pool.bv_const(2, 8);
        let is1 = pool.cmp(CmpKind::Eq, x, one);
        let is2 = pool.cmp(CmpKind::Eq, x, two);
        let mut inc = IncrementalSolver::new();
        let b = Budget::default();
        assert!(matches!(
            inc.check(&mut pool, &[is1], &b),
            SatResult::Sat(_)
        ));
        let clauses = inc.blast.cnf.clause_count();
        assert_eq!(
            inc.check_assuming(&mut pool, &[is1], &[is2], &b),
            SatResult::Unsat
        );
        assert_eq!(
            inc.blast.cnf.clause_count(),
            clauses,
            "assumption rolled back"
        );
        assert!(matches!(
            inc.check(&mut pool, &[is1], &b),
            SatResult::Sat(_)
        ));
    }

    #[test]
    fn assumption_array_read_rolls_back_in_bounds_axiom() {
        // Reading A[i] under an assumption emits an in-bounds axiom on i.
        // If it leaked, the later prefix-only check would wrongly constrain
        // i < 4.
        let mut pool = ExprPool::new();
        let arr = pool.array("A", 4, 8, Some(vec![1, 2, 3, 4]));
        let i = pool.var("i", 64);
        let big = pool.bv_const(1000, 64);
        let c = pool.cmp(CmpKind::Eq, i, big); // i = 1000 (out of bounds)
        let r = pool.read(arr, i);
        let one = pool.bv_const(1, 8);
        let assume = pool.cmp(CmpKind::Eq, r, one);
        let mut inc = IncrementalSolver::new();
        let b = Budget::default();
        // Under the assumption the read's in-bounds axiom contradicts i=1000.
        assert_eq!(
            inc.check_assuming(&mut pool, &[c], &[assume], &b),
            SatResult::Unsat
        );
        // Without it, i = 1000 is perfectly satisfiable.
        assert!(matches!(inc.check(&mut pool, &[c], &b), SatResult::Sat(_)));
    }

    #[test]
    fn prefix_mismatch_resets() {
        let mut pool = ExprPool::new();
        let x = pool.var("x", 8);
        let one = pool.bv_const(1, 8);
        let two = pool.bv_const(2, 8);
        let is1 = pool.cmp(CmpKind::Eq, x, one);
        let is2 = pool.cmp(CmpKind::Eq, x, two);
        let mut inc = IncrementalSolver::new();
        let b = Budget::default();
        assert!(matches!(
            inc.check(&mut pool, &[is1], &b),
            SatResult::Sat(_)
        ));
        // A different constraint slice (not an extension) must reset.
        assert!(matches!(
            inc.check(&mut pool, &[is2], &b),
            SatResult::Sat(_)
        ));
        assert_eq!(inc.check(&mut pool, &[is2, is1], &b), SatResult::Unsat);
    }

    #[test]
    fn const_false_decides_before_lowering() {
        let mut pool = ExprPool::new();
        let x = pool.var("x", 8);
        let one = pool.bv_const(1, 8);
        let is1 = pool.cmp(CmpKind::Eq, x, one);
        let f = pool.bool_const(false);
        let mut inc = IncrementalSolver::new();
        let b = Budget::default();
        assert_eq!(inc.check(&mut pool, &[is1, f], &b), SatResult::Unsat);
        assert_eq!(
            inc.check_assuming(&mut pool, &[is1], &[f], &b),
            SatResult::Unsat
        );
        assert!(matches!(
            inc.check(&mut pool, &[is1], &b),
            SatResult::Sat(_)
        ));
    }

    #[test]
    fn array_budget_stall_is_stable_across_retries() {
        let mut pool = ExprPool::new();
        let arr = pool.array("BIG", 1 << 20, 32, None);
        let i = pool.var("i", 64);
        let r = pool.read(arr, i);
        let zero = pool.bv_const(0, 32);
        let eq = pool.cmp(CmpKind::Eq, r, zero);
        let mut inc = IncrementalSolver::new();
        let b = Budget::small();
        let first = inc.check(&mut pool, &[eq], &b);
        let second = inc.check(&mut pool, &[eq], &b);
        assert!(matches!(
            first,
            SatResult::Unknown(StallReason::ArrayCells { .. })
        ));
        assert_eq!(first, second, "retry must observe the same trip point");
    }

    #[test]
    fn matches_fresh_solver_on_growing_prefixes() {
        // Drive one incremental engine through a growing prefix with
        // alternating assumption probes; every verdict must match a fresh
        // engine given the same full query.
        let mut pool = ExprPool::new();
        let x = pool.var("x", 8);
        let y = pool.var("y", 8);
        let sum = pool.bin(BvOp::Add, x, y);
        let c40 = pool.bv_const(40, 8);
        let c100 = pool.bv_const(100, 8);
        let c200 = pool.bv_const(200, 8);
        let cs = [
            pool.cmp(CmpKind::Ult, x, c100),
            pool.cmp(CmpKind::Ult, y, c100),
            pool.cmp(CmpKind::Eq, sum, c40),
            pool.cmp(CmpKind::Ult, c40, sum),
        ];
        let probes = vec![
            pool.cmp(CmpKind::Eq, x, c40),
            pool.cmp(CmpKind::Ult, c200, sum),
            pool.cmp(CmpKind::Ule, x, y),
        ];
        let mut inc = IncrementalSolver::new();
        let b = Budget::default();
        for n in 1..=cs.len() {
            let inc_res = inc.check(&mut pool, &cs[..n], &b);
            let fresh = fresh_verdict(&mut pool, &cs[..n], &[]);
            assert!(
                same_verdict(&inc_res, &fresh),
                "{n}: {inc_res:?} vs {fresh:?}"
            );
            for &p in &probes {
                let inc_res = inc.check_assuming(&mut pool, &cs[..n], &[p], &b);
                let fresh = fresh_verdict(&mut pool, &cs[..n], &[p]);
                assert!(
                    same_verdict(&inc_res, &fresh),
                    "{n}: {inc_res:?} vs {fresh:?}"
                );
                if let SatResult::Sat(m) = &inc_res {
                    assert!(cs[..n].iter().chain([&p]).all(|&e| m.eval_bool(&pool, e)));
                }
            }
        }
    }
}
