//! CNF representation and Tseitin gate helpers.

use std::fmt;

/// A propositional variable (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

/// A literal: a variable or its negation, encoded as `2*var + sign`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// A literal of `v` with the given polarity.
    pub fn new(v: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the positive literal.
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// Index suitable for watch lists (`0..2*n_vars`).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pos() {
            write!(f, "x{}", self.var().0)
        } else {
            write!(f, "!x{}", self.var().0)
        }
    }
}

/// A snapshot of a [`Cnf`]'s extent (see [`Cnf::mark`]).
#[derive(Debug, Clone, Copy)]
pub struct CnfMark {
    n_vars: u32,
    n_clauses: usize,
    const_true: Option<Lit>,
}

/// A CNF formula under construction, with Tseitin helpers.
#[derive(Debug, Default, Clone)]
pub struct Cnf {
    n_vars: u32,
    /// All clauses. Empty clause means trivially unsatisfiable.
    pub clauses: Vec<Vec<Lit>>,
    const_true: Option<Lit>,
}

impl Cnf {
    /// An empty formula.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.n_vars);
        self.n_vars += 1;
        v
    }

    /// Number of variables allocated.
    pub fn var_count(&self) -> u32 {
        self.n_vars
    }

    /// Number of clauses.
    pub fn clause_count(&self) -> usize {
        self.clauses.len()
    }

    /// Adds a clause (a disjunction of literals).
    pub fn add_clause(&mut self, lits: &[Lit]) {
        self.clauses.push(lits.to_vec());
    }

    /// Captures the current formula extent for a later [`Cnf::rollback`].
    pub fn mark(&self) -> CnfMark {
        CnfMark {
            n_vars: self.n_vars,
            n_clauses: self.clauses.len(),
            const_true: self.const_true,
        }
    }

    /// Discards every variable and clause added since `mark` was taken.
    ///
    /// Used by the incremental solver to scope assumption-only lowering:
    /// nothing added after the mark may be referenced by clauses before it
    /// (Tseitin outputs are only consumed by later clauses), so truncation
    /// restores exactly the pre-mark formula.
    pub fn rollback(&mut self, mark: &CnfMark) {
        debug_assert!(mark.n_vars <= self.n_vars && mark.n_clauses <= self.clauses.len());
        self.n_vars = mark.n_vars;
        self.clauses.truncate(mark.n_clauses);
        self.const_true = mark.const_true;
    }

    /// A literal that is always true (lazily created).
    pub fn true_lit(&mut self) -> Lit {
        if let Some(l) = self.const_true {
            return l;
        }
        let v = self.new_var();
        let l = Lit::pos(v);
        self.add_clause(&[l]);
        self.const_true = Some(l);
        l
    }

    /// A literal that is always false.
    pub fn false_lit(&mut self) -> Lit {
        !self.true_lit()
    }

    /// Whether `l` is the constant-true or constant-false literal.
    fn known(&self, l: Lit) -> Option<bool> {
        let t = self.const_true?;
        if l == t {
            Some(true)
        } else if l == !t {
            Some(false)
        } else {
            None
        }
    }

    /// `out <-> a AND b`.
    pub fn and_gate(&mut self, a: Lit, b: Lit) -> Lit {
        match (self.known(a), self.known(b)) {
            (Some(true), _) => return b,
            (_, Some(true)) => return a,
            (Some(false), _) | (_, Some(false)) => return self.false_lit(),
            _ => {}
        }
        if a == b {
            return a;
        }
        if a == !b {
            return self.false_lit();
        }
        let out = Lit::pos(self.new_var());
        self.add_clause(&[!out, a]);
        self.add_clause(&[!out, b]);
        self.add_clause(&[out, !a, !b]);
        out
    }

    /// `out <-> a OR b`.
    pub fn or_gate(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and_gate(!a, !b)
    }

    /// `out <-> a XOR b`.
    pub fn xor_gate(&mut self, a: Lit, b: Lit) -> Lit {
        match (self.known(a), self.known(b)) {
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            (Some(true), _) => return !b,
            (_, Some(true)) => return !a,
            _ => {}
        }
        if a == b {
            return self.false_lit();
        }
        if a == !b {
            return self.true_lit();
        }
        let out = Lit::pos(self.new_var());
        self.add_clause(&[!out, a, b]);
        self.add_clause(&[!out, !a, !b]);
        self.add_clause(&[out, !a, b]);
        self.add_clause(&[out, a, !b]);
        out
    }

    /// `out <-> (c ? t : e)`.
    pub fn ite_gate(&mut self, c: Lit, t: Lit, e: Lit) -> Lit {
        if t == e {
            return t;
        }
        match self.known(c) {
            Some(true) => return t,
            Some(false) => return e,
            None => {}
        }
        match (self.known(t), self.known(e)) {
            (Some(true), Some(false)) => return c,
            (Some(false), Some(true)) => return !c,
            (Some(true), None) => return self.or_gate(c, e),
            (Some(false), None) => {
                let nc = !c;
                return self.and_gate(nc, e);
            }
            (None, Some(true)) => {
                let nc = !c;
                return self.or_gate(nc, t);
            }
            (None, Some(false)) => return self.and_gate(c, t),
            _ => {}
        }
        let out = Lit::pos(self.new_var());
        self.add_clause(&[!out, !c, t]);
        self.add_clause(&[!out, c, e]);
        self.add_clause(&[out, !c, !t]);
        self.add_clause(&[out, c, !e]);
        out
    }

    /// `out <-> (a <-> b)`.
    pub fn iff_gate(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor_gate(a, b)
    }

    /// Full adder: returns `(sum, carry_out)` for `a + b + cin`.
    pub fn full_adder(&mut self, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let ab = self.xor_gate(a, b);
        let sum = self.xor_gate(ab, cin);
        let c1 = self.and_gate(a, b);
        let c2 = self.and_gate(ab, cin);
        let cout = self.or_gate(c1, c2);
        (sum, cout)
    }

    /// Evaluates the formula under a full assignment (for tests).
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| {
            c.iter()
                .any(|l| assignment[l.var().0 as usize] == l.is_pos())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let v = Var(3);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.var(), v);
        assert!(p.is_pos());
        assert!(!n.is_pos());
        assert_eq!(!p, n);
        assert_eq!(!!p, p);
        assert_eq!(p.to_string(), "x3");
        assert_eq!(n.to_string(), "!x3");
    }

    fn exhaustive_gate(
        build: impl Fn(&mut Cnf, Lit, Lit) -> Lit,
        truth: impl Fn(bool, bool) -> bool,
    ) {
        for a_val in [false, true] {
            for b_val in [false, true] {
                let mut cnf = Cnf::new();
                let a = Lit::pos(cnf.new_var());
                let b = Lit::pos(cnf.new_var());
                let out = build(&mut cnf, a, b);
                // Force inputs, then check that out's forced value matches.
                cnf.add_clause(&[if a_val { a } else { !a }]);
                cnf.add_clause(&[if b_val { b } else { !b }]);
                cnf.add_clause(&[if truth(a_val, b_val) { out } else { !out }]);
                let sat = crate::sat::solve_for_tests(&cnf);
                assert!(sat, "gate disagrees at ({a_val},{b_val})");
                let mut cnf2 = Cnf::new();
                let a2 = Lit::pos(cnf2.new_var());
                let b2 = Lit::pos(cnf2.new_var());
                let out2 = build(&mut cnf2, a2, b2);
                cnf2.add_clause(&[if a_val { a2 } else { !a2 }]);
                cnf2.add_clause(&[if b_val { b2 } else { !b2 }]);
                cnf2.add_clause(&[if truth(a_val, b_val) { !out2 } else { out2 }]);
                assert!(
                    !crate::sat::solve_for_tests(&cnf2),
                    "gate output not forced at ({a_val},{b_val})"
                );
            }
        }
    }

    #[test]
    fn and_gate_truth_table() {
        exhaustive_gate(|c, a, b| c.and_gate(a, b), |x, y| x && y);
    }

    #[test]
    fn or_gate_truth_table() {
        exhaustive_gate(|c, a, b| c.or_gate(a, b), |x, y| x || y);
    }

    #[test]
    fn xor_gate_truth_table() {
        exhaustive_gate(|c, a, b| c.xor_gate(a, b), |x, y| x ^ y);
    }

    #[test]
    fn ite_gate_truth_table() {
        for c_val in [false, true] {
            for t_val in [false, true] {
                for e_val in [false, true] {
                    let mut cnf = Cnf::new();
                    let c = Lit::pos(cnf.new_var());
                    let t = Lit::pos(cnf.new_var());
                    let e = Lit::pos(cnf.new_var());
                    let out = cnf.ite_gate(c, t, e);
                    for (l, v) in [(c, c_val), (t, t_val), (e, e_val)] {
                        cnf.add_clause(&[if v { l } else { !l }]);
                    }
                    let expect = if c_val { t_val } else { e_val };
                    cnf.add_clause(&[if expect { !out } else { out }]);
                    assert!(!crate::sat::solve_for_tests(&cnf));
                }
            }
        }
    }

    #[test]
    fn full_adder_counts() {
        for a_val in [false, true] {
            for b_val in [false, true] {
                for c_val in [false, true] {
                    let mut cnf = Cnf::new();
                    let a = Lit::pos(cnf.new_var());
                    let b = Lit::pos(cnf.new_var());
                    let c = Lit::pos(cnf.new_var());
                    let (s, co) = cnf.full_adder(a, b, c);
                    for (l, v) in [(a, a_val), (b, b_val), (c, c_val)] {
                        cnf.add_clause(&[if v { l } else { !l }]);
                    }
                    let total = u8::from(a_val) + u8::from(b_val) + u8::from(c_val);
                    cnf.add_clause(&[if total & 1 == 1 { s } else { !s }]);
                    cnf.add_clause(&[if total >= 2 { co } else { !co }]);
                    assert!(crate::sat::solve_for_tests(&cnf));
                }
            }
        }
    }

    #[test]
    fn eval_checks_assignments() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        cnf.add_clause(&[Lit::neg(a)]);
        assert!(cnf.eval(&[false, true]));
        assert!(!cnf.eval(&[true, true]));
        assert!(!cnf.eval(&[false, false]));
    }
}
