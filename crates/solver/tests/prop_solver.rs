//! Property tests for the solver stack: the simplifier must agree with
//! concrete machine arithmetic, models must satisfy the formulas they were
//! produced for, and the CDCL core must agree with brute force.

use er_solver::cnf::{Cnf, Lit, Var};
use er_solver::expr::{BvOp, CmpKind, ExprPool, ExprRef, VarId};
use er_solver::sat::{SatOutcome, SatSolver};
use er_solver::simplify::eval_concrete;
use er_solver::solve::{Budget, SatResult, Solver};
use proptest::prelude::*;

fn bvop() -> impl Strategy<Value = BvOp> {
    prop_oneof![
        Just(BvOp::Add),
        Just(BvOp::Sub),
        Just(BvOp::Mul),
        Just(BvOp::UDiv),
        Just(BvOp::URem),
        Just(BvOp::And),
        Just(BvOp::Or),
        Just(BvOp::Xor),
        Just(BvOp::Shl),
        Just(BvOp::LShr),
        Just(BvOp::AShr),
    ]
}

fn cmpkind() -> impl Strategy<Value = CmpKind> {
    prop_oneof![
        Just(CmpKind::Eq),
        Just(CmpKind::Ult),
        Just(CmpKind::Ule),
        Just(CmpKind::Slt),
        Just(CmpKind::Sle),
    ]
}

fn width() -> impl Strategy<Value = u32> {
    prop_oneof![Just(8u32), Just(16), Just(32), Just(64)]
}

/// A random expression over two variables, returned with the pool.
fn random_expr(ops: Vec<(BvOp, bool)>, bits: u32) -> (ExprPool, ExprRef) {
    let mut pool = ExprPool::new();
    let x = pool.var("x", bits);
    let y = pool.var("y", bits);
    let mut acc = x;
    for (i, (op, use_y)) in ops.into_iter().enumerate() {
        let rhs = if use_y {
            y
        } else {
            pool.bv_const(i as u64 + 1, bits)
        };
        acc = pool.bin(op, acc, rhs);
    }
    (pool, acc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Constructor-time simplification never changes semantics: evaluating
    /// the (possibly folded) DAG equals direct machine arithmetic.
    #[test]
    fn simplifier_agrees_with_machine_arithmetic(
        ops in prop::collection::vec((bvop(), any::<bool>()), 1..8),
        bits in width(),
        xv in any::<u64>(),
        yv in any::<u64>(),
    ) {
        let (pool, expr) = random_expr(ops.clone(), bits);
        let got = eval_concrete(&pool, expr, &|id| if id == VarId(0) { xv } else { yv });
        // Reference: replay the op list with BvOp::eval.
        let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        let mut expect = xv & mask;
        for (i, (op, use_y)) in ops.iter().enumerate() {
            let rhs = if *use_y { yv & mask } else { i as u64 + 1 };
            expect = op.eval(bits, expect, rhs);
        }
        prop_assert_eq!(got, expect);
    }

    /// Any SAT answer comes with a model that satisfies the assertion.
    #[test]
    fn models_satisfy_assertions(
        ops in prop::collection::vec((bvop(), any::<bool>()), 1..6),
        cmp in cmpkind(),
        bits in width(),
        target in any::<u64>(),
    ) {
        let (mut pool, expr) = random_expr(ops, bits);
        let t = pool.bv_const(target, bits);
        let c = pool.cmp(cmp, expr, t);
        let mut solver = Solver::new(&mut pool);
        solver.assert(c);
        match solver.check(&Budget::default()) {
            SatResult::Sat(model) => prop_assert!(model.eval_bool(&pool, c)),
            SatResult::Unsat | SatResult::Unknown(_) => {}
        }
    }

    /// The negation of a satisfied constraint is never also reported SAT
    /// under the same model.
    #[test]
    fn negation_is_consistent(
        bits in width(),
        a in any::<u64>(),
        b in any::<u64>(),
        cmp in cmpkind(),
    ) {
        let mut pool = ExprPool::new();
        let x = pool.var("x", bits);
        let av = pool.bv_const(a, bits);
        let sum = pool.bin(BvOp::Add, x, av);
        let bv = pool.bv_const(b, bits);
        let c = pool.cmp(cmp, sum, bv);
        let nc = pool.not(c);
        let mut solver = Solver::new(&mut pool);
        solver.assert(c);
        solver.assert(nc);
        prop_assert_eq!(solver.check(&Budget::default()), SatResult::Unsat);
    }

    /// CDCL agrees with brute force on random small CNFs.
    #[test]
    fn sat_agrees_with_bruteforce(
        clauses in prop::collection::vec(
            prop::collection::vec((0u32..6, any::<bool>()), 1..4),
            1..24,
        ),
    ) {
        let mut cnf = Cnf::new();
        let vars: Vec<Var> = (0..6).map(|_| cnf.new_var()).collect();
        for clause in &clauses {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&(v, pos)| Lit::new(vars[v as usize], pos))
                .collect();
            cnf.add_clause(&lits);
        }
        let brute = (0u32..64).any(|bits| {
            let assignment: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            cnf.eval(&assignment)
        });
        let got = match SatSolver::new(&cnf).solve(1_000_000) {
            SatOutcome::Sat(m) => {
                prop_assert!(cnf.eval(&m));
                true
            }
            SatOutcome::Unsat => false,
            SatOutcome::Unknown => return Err(TestCaseError::fail("budget exhausted")),
        };
        prop_assert_eq!(got, brute);
    }

    /// Concrete store chains fold reads to the right value (the reference
    /// model is a plain array).
    #[test]
    fn concrete_array_chains_fold(
        writes in prop::collection::vec((0u64..16, any::<u8>()), 0..12),
        read_at in 0u64..16,
    ) {
        let mut pool = ExprPool::new();
        let mut arr = pool.array("A", 16, 8, None);
        let mut reference = [0u8; 16];
        for (idx, val) in &writes {
            let i = pool.bv_const(*idx, 64);
            let v = pool.bv_const(u64::from(*val), 8);
            arr = pool.write(arr, i, v);
            reference[*idx as usize] = *val;
        }
        let i = pool.bv_const(read_at, 64);
        let r = pool.read(arr, i);
        prop_assert_eq!(pool.as_const(r), Some(u64::from(reference[read_at as usize])));
    }

    /// A symbolic read constrained to a unique index is forced to the
    /// written value.
    #[test]
    fn symbolic_read_respects_unique_index(
        idx in 0u64..8,
        val in 1u64..200,
    ) {
        let mut pool = ExprPool::new();
        let arr = pool.array("A", 8, 32, None);
        let i = pool.var("i", 64);
        let iv = pool.bv_const(idx, 64);
        let vv = pool.bv_const(val, 32);
        let w = pool.write(arr, i, vv);
        let r = pool.read(w, iv);
        let pin = pool.cmp(CmpKind::Eq, i, iv);
        let wrong = pool.ne(r, vv);
        let mut solver = Solver::new(&mut pool);
        solver.assert(pin);
        solver.assert(wrong);
        prop_assert_eq!(solver.check(&Budget::default()), SatResult::Unsat);
    }
}
