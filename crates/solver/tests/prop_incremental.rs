//! Property tests for the incremental engine: a persistent
//! [`IncrementalSolver`] driven through growing prefixes and assumption
//! probes must agree with a fresh (uncached) solve of each full query.

use er_solver::expr::{BvOp, CmpKind, ExprPool, ExprRef};
use er_solver::inc::IncrementalSolver;
use er_solver::solve::{Budget, SatResult};
use proptest::prelude::*;

fn cmpkind() -> impl Strategy<Value = CmpKind> {
    prop_oneof![
        Just(CmpKind::Eq),
        Just(CmpKind::Ult),
        Just(CmpKind::Ule),
        Just(CmpKind::Slt),
        Just(CmpKind::Sle),
    ]
}

fn bvop() -> impl Strategy<Value = BvOp> {
    prop_oneof![
        Just(BvOp::Add),
        Just(BvOp::Sub),
        Just(BvOp::Mul),
        Just(BvOp::And),
        Just(BvOp::Or),
        Just(BvOp::Xor),
    ]
}

/// One random boolean constraint over `x`, `y`, and a constant.
fn constraint(
    pool: &mut ExprPool,
    x: ExprRef,
    y: ExprRef,
    op: BvOp,
    cmp: CmpKind,
    k: u64,
) -> ExprRef {
    let mixed = pool.bin(op, x, y);
    let kv = pool.bv_const(k, 8);
    pool.cmp(cmp, mixed, kv)
}

fn verdicts_match(a: &SatResult, b: &SatResult) -> bool {
    matches!(
        (a, b),
        (SatResult::Sat(_), SatResult::Sat(_))
            | (SatResult::Unsat, SatResult::Unsat)
            | (SatResult::Unknown(_), SatResult::Unknown(_))
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Checking a growing assertion prefix on one persistent engine gives
    /// the same satisfiability verdict as an uncached solve of each full
    /// set, and any model produced satisfies everything asserted.
    #[test]
    fn cached_prefix_checks_match_fresh(
        specs in prop::collection::vec((bvop(), cmpkind(), any::<u8>()), 1..6),
    ) {
        let mut pool = ExprPool::new();
        let x = pool.var("x", 8);
        let y = pool.var("y", 8);
        let cs: Vec<ExprRef> = specs
            .iter()
            .map(|&(op, cmp, k)| constraint(&mut pool, x, y, op, cmp, u64::from(k)))
            .collect();
        let budget = Budget::default();
        let mut inc = IncrementalSolver::new();
        for n in 1..=cs.len() {
            let cached = inc.check(&mut pool, &cs[..n], &budget);
            let fresh = IncrementalSolver::new().check(&mut pool, &cs[..n], &budget);
            prop_assert!(
                verdicts_match(&cached, &fresh),
                "prefix {n}: cached {cached:?} vs fresh {fresh:?}"
            );
            if let SatResult::Sat(m) = &cached {
                prop_assert!(cs[..n].iter().all(|&c| m.eval_bool(&pool, c)));
            }
        }
    }

    /// Assumption probes answered from a clone of the persistent solver
    /// match a fresh solve of prefix + assumption, and never perturb
    /// subsequent prefix-only answers.
    #[test]
    fn cached_assumption_probes_match_fresh(
        specs in prop::collection::vec((bvop(), cmpkind(), any::<u8>()), 1..4),
        probes in prop::collection::vec((bvop(), cmpkind(), any::<u8>()), 1..4),
    ) {
        let mut pool = ExprPool::new();
        let x = pool.var("x", 8);
        let y = pool.var("y", 8);
        let cs: Vec<ExprRef> = specs
            .iter()
            .map(|&(op, cmp, k)| constraint(&mut pool, x, y, op, cmp, u64::from(k)))
            .collect();
        let ps: Vec<ExprRef> = probes
            .iter()
            .map(|&(op, cmp, k)| constraint(&mut pool, x, y, op, cmp, u64::from(k)))
            .collect();
        let budget = Budget::default();
        let mut inc = IncrementalSolver::new();
        let baseline = inc.check(&mut pool, &cs, &budget);
        for &p in &ps {
            let cached = inc.check_assuming(&mut pool, &cs, &[p], &budget);
            let fresh = IncrementalSolver::new().check_assuming(&mut pool, &cs, &[p], &budget);
            prop_assert!(
                verdicts_match(&cached, &fresh),
                "probe: cached {cached:?} vs fresh {fresh:?}"
            );
            if let SatResult::Sat(m) = &cached {
                prop_assert!(cs.iter().chain([&p]).all(|&c| m.eval_bool(&pool, c)));
            }
            // The probe must leave the persistent state unchanged.
            let after = inc.check(&mut pool, &cs, &budget);
            prop_assert!(verdicts_match(&baseline, &after));
        }
    }
}
