//! Fault injection at the solver boundary: an injected stall must look
//! exactly like the conflict budget tripping — `Unknown(Conflicts)`, never
//! a panic, never a wrong `Sat`/`Unsat`. Lives in its own integration test
//! binary because chaos arming is process-global.

use er_solver::expr::{CmpKind, ExprPool};
use er_solver::solve::{Budget, SatResult, Solver, StallReason};

fn satisfiable_solver(pool: &mut ExprPool) -> Solver<'_> {
    let x = pool.var("x", 32);
    let ten = pool.bv_const(10, 32);
    let lt = pool.cmp(CmpKind::Ult, x, ten);
    let mut s = Solver::new(pool);
    s.assert(lt);
    s
}

#[test]
fn injected_stall_is_a_budget_stall_and_then_clears() {
    let plan = er_chaos::ChaosPlan::new(0xd00d).with(
        er_chaos::Fault::SolverStall,
        er_chaos::FaultPolicy::always(1),
    );
    let guard = er_chaos::arm(plan);

    let budget = Budget::small();
    let mut pool = ExprPool::new();
    let mut s = satisfiable_solver(&mut pool);
    // First check eats the injection: a plain budget stall, no panic.
    assert_eq!(
        s.check(&budget),
        SatResult::Unknown(StallReason::Conflicts {
            conflicts: budget.max_conflicts
        })
    );
    // Budget spent: the very next check (the "retry") succeeds.
    assert!(matches!(s.check(&budget), SatResult::Sat(_)));

    let stats = er_chaos::stats().expect("armed");
    let dom = stats.domain(er_chaos::Domain::Solver);
    assert_eq!(dom.injected, 1);
    assert_eq!(dom.degraded, 1);
    drop(guard);

    // Disarmed: no injection at all.
    let mut pool = ExprPool::new();
    let mut s = satisfiable_solver(&mut pool);
    assert!(matches!(s.check(&budget), SatResult::Sat(_)));
}
