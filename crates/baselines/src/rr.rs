//! An rr-style full record/replay engine.
//!
//! Mozilla rr records every source of nondeterminism — syscall results,
//! signal/preemption points, rdtsc — by running the tracee under a
//! supervisor process. The recording itself is cheap; the cost is the
//! *interception machinery*: every scheduling decision enters the
//! supervisor (performance-counter read, context switch, bookkeeping), and
//! every input syscall's buffers are copied and checksummed into the trace.
//!
//! [`RrRecorder`] models those costs with real work (buffer hashing and
//! serialization) so that Fig. 6's overhead comparison measures genuine
//! wall-clock ratios rather than fabricated constants. [`RrLog::replay`]
//! then demonstrates the accuracy side: the log deterministically recreates
//! the run.

use er_minilang::env::{Env, InputEvent};
use er_minilang::interp::SchedConfig;
use er_minilang::ir::FuncId;
use er_minilang::trace::TraceSink;

/// One recorded nondeterministic event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RrEvent {
    /// An input syscall: stream, offset, and the bytes read.
    Input {
        /// Stream id.
        source: u32,
        /// Offset within the stream.
        offset: usize,
        /// Bytes consumed.
        bytes: Vec<u8>,
    },
    /// A clock read.
    Clock(u64),
    /// A scheduling decision: thread `tid` resumed at virtual time `tsc`.
    Schedule {
        /// Thread id.
        tid: u64,
        /// Virtual timestamp.
        tsc: u64,
    },
}

/// The serialized recording of one run.
#[derive(Debug, Clone, Default)]
pub struct RrLog {
    /// Events in order.
    pub events: Vec<RrEvent>,
    /// Serialized trace bytes (what would be written to disk).
    pub trace_bytes: u64,
    /// The schedule the run used (needed for deterministic replay).
    pub sched: Option<SchedConfig>,
}

impl RrLog {
    /// Rebuilds the recorded input environment.
    pub fn rebuild_env(&self) -> Env {
        let mut env = Env::new();
        for ev in &self.events {
            if let RrEvent::Input { source, bytes, .. } = ev {
                env.push_input(*source, bytes);
            }
        }
        env
    }

    /// Deterministically replays the recording against `program`.
    ///
    /// # Panics
    ///
    /// Panics if the log was produced without schedule information.
    pub fn replay(
        &self,
        program: &er_minilang::ir::Program,
    ) -> er_minilang::interp::RunReport<er_minilang::trace::NullSink> {
        let sched = self.sched.expect("log carries the schedule");
        er_minilang::interp::Machine::new(program, self.rebuild_env())
            .with_sched(sched)
            .run()
    }
}

/// The online recorder; implements the interpreter's [`TraceSink`].
#[derive(Debug, Default)]
pub struct RrRecorder {
    log: RrLog,
    /// Rolling checksum standing in for rr's trace integrity hashing.
    checksum: u64,
    /// Scratch modeling the supervisor's saved-state page.
    supervisor_state: Vec<u8>,
}

impl RrRecorder {
    /// A recorder that will note `sched` in its log for replay.
    pub fn new(sched: SchedConfig) -> Self {
        RrRecorder {
            log: RrLog {
                sched: Some(sched),
                ..RrLog::default()
            },
            checksum: 0xcbf2_9ce4_8422_2325,
            supervisor_state: vec![0u8; 16384],
        }
    }

    /// Finalizes and returns the log.
    pub fn finish(self) -> RrLog {
        self.log
    }

    #[inline]
    fn hash_bytes(&mut self, bytes: &[u8]) {
        let mut h = self.checksum;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.checksum = h;
    }

    /// Models entering the supervisor: save/examine the tracee state page.
    fn supervisor_entry(&mut self) {
        let mut h = self.checksum;
        for chunk in self.supervisor_state.chunks_exact(8) {
            let v = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            h = (h ^ v).wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Touch the page so the work is not optimized away.
        let n = self.supervisor_state.len() as u64;
        self.supervisor_state[(h % n) as usize] = h as u8;
        self.checksum = h;
    }

    /// The recorded event count.
    pub fn event_count(&self) -> usize {
        self.log.events.len()
    }
}

impl TraceSink for RrRecorder {
    #[inline]
    fn cond_branch(&mut self, _taken: bool) {
        // rr does not trace branches.
    }

    #[inline]
    fn call(&mut self, _func: FuncId) {}

    fn input(&mut self, event: &InputEvent) {
        // Syscall interception: enter the supervisor, copy and checksum the
        // buffer, serialize the event record.
        er_telemetry::counter!("rr.inputs_intercepted").incr();
        self.supervisor_entry();
        self.hash_bytes(&event.bytes.clone());
        self.log.trace_bytes += 16 + event.bytes.len() as u64;
        self.log.events.push(RrEvent::Input {
            source: event.source,
            offset: event.offset,
            bytes: event.bytes.clone(),
        });
    }

    fn clock_read(&mut self, value: u64) {
        er_telemetry::counter!("rr.clocks_intercepted").incr();
        self.supervisor_entry();
        self.log.trace_bytes += 9;
        self.log.events.push(RrEvent::Clock(value));
    }

    fn thread_resume(&mut self, tid: u64, tsc: u64) {
        // Every preemption goes through the supervisor: perf-counter read,
        // context save, scheduling bookkeeping.
        er_telemetry::counter!("rr.schedules_intercepted").incr();
        self.supervisor_entry();
        self.supervisor_entry();
        self.log.trace_bytes += 17;
        self.log.events.push(RrEvent::Schedule { tid, tsc });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_minilang::compile;
    use er_minilang::interp::{Machine, RunOutcome};

    fn record(
        src: &str,
        inputs: &[(u32, Vec<u8>)],
        sched: SchedConfig,
    ) -> (er_minilang::ir::Program, RunOutcome, RrLog) {
        let program = compile(src).unwrap();
        let mut env = Env::new();
        for (s, b) in inputs {
            env.push_input(*s, b);
        }
        let report = Machine::with_sink(&program, env, RrRecorder::new(sched))
            .with_sched(sched)
            .run();
        let log = report.sink.finish();
        (program, report.outcome, log)
    }

    #[test]
    fn records_inputs_and_replays_identically() {
        let src = r#"
            fn main() {
                let a: u32 = input_u32(0);
                let b: u32 = input_u32(0);
                if a > b { print(a - b); } else { print(b - a); }
            }
        "#;
        let sched = SchedConfig::default();
        let (program, outcome, log) = record(
            src,
            &[(0, [9u32.to_le_bytes(), 4u32.to_le_bytes()].concat())],
            sched,
        );
        assert!(matches!(outcome, RunOutcome::Completed));
        assert_eq!(
            log.events
                .iter()
                .filter(|e| matches!(e, RrEvent::Input { .. }))
                .count(),
            2
        );
        assert!(log.trace_bytes > 0);
        let replay = log.replay(&program);
        assert_eq!(replay.output, vec![5]);
    }

    #[test]
    fn replays_multithreaded_failures() {
        let src = r#"
            global counter: u32;
            fn w(n: u32) {
                for i: u32 = 0; i < n; i = i + 1 {
                    let c: u32 = counter;
                    counter = c + 1;
                }
            }
            fn main() {
                let t1: u64 = spawn w(500);
                let t2: u64 = spawn w(500);
                join(t1);
                join(t2);
                assert(counter == 1000, "lost update");
            }
        "#;
        // Find a schedule that loses an update.
        let program = compile(src).unwrap();
        let mut found = None;
        for seed in 0..32 {
            let sched = SchedConfig {
                quantum: 61,
                seed,
                max_instrs: 50_000_000,
            };
            let report = Machine::with_sink(&program, Env::new(), RrRecorder::new(sched))
                .with_sched(sched)
                .run();
            if let RunOutcome::Failure(f) = report.outcome {
                found = Some((f, report.sink.finish()));
                break;
            }
        }
        let (failure, log) = found.expect("some schedule loses an update");
        // Full record/replay reproduces the concurrency failure exactly.
        let replay = log.replay(&program);
        let RunOutcome::Failure(f2) = replay.outcome else {
            panic!("replay must fail identically")
        };
        assert!(f2.same_failure(&failure));
    }

    #[test]
    fn schedule_events_are_recorded() {
        let src = "fn main() { let i: u32 = 0; while i < 5000 { i = i + 1; } print(i); }";
        let sched = SchedConfig {
            quantum: 500,
            seed: 3,
            max_instrs: 10_000_000,
        };
        let (_, _, log) = record(src, &[], sched);
        let scheds = log
            .events
            .iter()
            .filter(|e| matches!(e, RrEvent::Schedule { .. }))
            .count();
        assert!(scheds > 5, "quantum expiries are intercepted: {scheds}");
    }
}
