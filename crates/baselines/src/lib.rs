//! Baseline failure-reproduction systems ER is compared against.
//!
//! * [`rr`] — a Mozilla-rr-style full record/replay engine: records every
//!   nondeterministic event (inputs, clock reads, scheduling quanta) with
//!   realistic per-event interception costs, and replays deterministically.
//!   Used for the Fig. 6 efficiency comparison and the accuracy discussion
//!   in §2.3.
//! * [`rept`] — a REPT-style reverse-execution engine: recovers data values
//!   from a control-flow trace plus the final memory image, with the honest
//!   failure mode the paper reports (values become unknown or wrong as the
//!   reconstruction window grows, §2.2/§5.2).

pub mod rept;
pub mod rr;

pub use rept::{ReptAnalysis, ReptReport};
pub use rr::{RrLog, RrRecorder};
