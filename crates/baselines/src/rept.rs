//! A REPT-style reverse-execution data-recovery engine.
//!
//! REPT (OSDI'18) reconstructs the data flow of the instructions leading to
//! a crash from (a) an Intel PT control-flow trace and (b) the crash dump's
//! final register and memory state, by walking the instruction sequence
//! backward and inverting instructions where possible. Its documented
//! weakness — the motivation for ER — is that programs overwrite data, so
//! recovery quality collapses as the reconstruction window grows, and its
//! no-alias guesses make some recovered values silently *wrong* (§2.2/§2.3
//! of the ER paper: 15-60% of values incorrect beyond 100K instructions).
//!
//! This module reproduces that behaviour mechanically:
//!
//! * [`ConcreteTape`] re-executes the failing run to obtain the dynamic
//!   instruction sequence (the stand-in for PT trace + binary) *and* the
//!   ground truth used only for grading.
//! * [`ReptAnalysis`] sees only the instruction sequence, the final
//!   registers, and the final memory — never the ground-truth values — and
//!   recovers what it can via backward inversion. With
//!   `assume_no_alias = true` (REPT's best-effort mode) stores through
//!   unrecovered addresses do not invalidate its memory picture, which is
//!   precisely where wrong values come from.

use er_minilang::env::Env;
use er_minilang::error::RuntimeFault;
use er_minilang::ir::*;
use er_minilang::mem::Memory;
use er_minilang::value::Width;
use std::collections::HashMap;

/// One executed, value-defining instruction.
#[derive(Debug, Clone)]
pub struct TapeEntry {
    /// Static instruction.
    pub site: InstrId,
    /// Frame activation id (unique per call).
    pub frame: u64,
    /// The instruction (cloned for operand inspection).
    pub instr: Instr,
    /// Ground-truth operand values `(a, b)` where applicable — used only
    /// for grading, never by the analysis.
    pub truth_dst: u64,
}

/// The recorded dynamic instruction sequence plus crash-dump state.
#[derive(Debug)]
pub struct ConcreteTape {
    /// Value-defining entries, oldest first.
    pub entries: Vec<TapeEntry>,
    /// Final (crash-time) registers per live frame id.
    pub final_regs: HashMap<(u64, u32), u64>,
    /// Final memory image, byte-granular.
    pub final_mem: HashMap<u64, u8>,
    /// Whether the run faulted.
    pub faulted: bool,
}

impl ConcreteTape {
    /// Executes `program` (single-threaded subset) under `env`, recording
    /// the last `window` value-defining instructions.
    ///
    /// # Errors
    ///
    /// Returns an error string for multithreaded programs (REPT's published
    /// evaluation is per-thread; our comparison uses the sequential
    /// workloads).
    pub fn record(program: &Program, mut env: Env, window: usize) -> Result<ConcreteTape, String> {
        let mut mem = Memory::new(program);
        // (func, block, ip, regs, ret_dst, stack_mark, frame_id)
        type Frame = (FuncId, BlockId, usize, Vec<u64>, Option<Reg>, u64, u64);
        let mut frames: Vec<Frame> = Vec::new();
        let mut next_frame = 0u64;
        frames.push((
            program.entry,
            BlockId(0),
            0,
            vec![0; program.func(program.entry).n_regs],
            None,
            mem.stack_watermark(0),
            next_frame,
        ));
        let mut entries: Vec<TapeEntry> = Vec::new();
        let mut faulted = false;
        let mut steps: u64 = 0;

        'run: while let Some(frame) = frames.last_mut() {
            steps += 1;
            if steps > 200_000_000 {
                return Err("tape budget exceeded".into());
            }
            let (func, block, ip, frame_id) = (frame.0, frame.1, frame.2, frame.6);
            let blk = program.func(func).block(block);
            if ip >= blk.instrs.len() {
                match blk.term.clone().expect("terminated") {
                    Terminator::Jump(b) => {
                        frame.1 = b;
                        frame.2 = 0;
                    }
                    Terminator::Branch {
                        cond,
                        then_blk,
                        else_blk,
                    } => {
                        let c = operand(&frame.3, cond);
                        frame.1 = if c != 0 { then_blk } else { else_blk };
                        frame.2 = 0;
                    }
                    Terminator::Return(v) => {
                        let value = v.map(|op| operand(&frame.3, op)).unwrap_or(0);
                        let (_, _, _, _, ret_dst, mark, _) = frames.pop().expect("frame");
                        mem.stack_restore(0, mark);
                        if let Some(caller) = frames.last_mut() {
                            if let Some(dst) = ret_dst {
                                caller.3[dst.0 as usize] = value;
                            }
                            caller.2 += 1;
                        }
                    }
                }
                continue;
            }
            let instr = blk.instrs[ip].clone();
            let site = InstrId {
                func,
                block,
                index: ip,
            };
            let push_entry = |entries: &mut Vec<TapeEntry>, instr: &Instr, truth: u64| {
                entries.push(TapeEntry {
                    site,
                    frame: frame_id,
                    instr: instr.clone(),
                    truth_dst: truth,
                });
                // Trim lazily in batches; per-entry draining would make the
                // tape quadratic in run length.
                if entries.len() >= window.saturating_mul(2).max(window + 4096) {
                    let excess = entries.len() - window;
                    entries.drain(..excess);
                }
            };
            let regs = &mut frames.last_mut().expect("frame").3;
            let fault: Option<RuntimeFault> = match &instr {
                Instr::Const { dst, value } => {
                    regs[dst.0 as usize] = *value;
                    push_entry(&mut entries, &instr, *value);
                    None
                }
                Instr::Bin {
                    dst,
                    op,
                    a,
                    b,
                    width,
                } => match op.eval(*width, operand(regs, *a), operand(regs, *b)) {
                    Some(v) => {
                        regs[dst.0 as usize] = v;
                        push_entry(&mut entries, &instr, v);
                        None
                    }
                    None => Some(RuntimeFault::DivByZero),
                },
                Instr::Un { dst, op, a, width } => {
                    let v = op.eval(*width, operand(regs, *a));
                    regs[dst.0 as usize] = v;
                    push_entry(&mut entries, &instr, v);
                    None
                }
                Instr::Cmp {
                    dst,
                    pred,
                    a,
                    b,
                    width,
                } => {
                    let v = u64::from(pred.eval(*width, operand(regs, *a), operand(regs, *b)));
                    regs[dst.0 as usize] = v;
                    push_entry(&mut entries, &instr, v);
                    None
                }
                Instr::Cast { dst, a, from } => {
                    let v = from.trunc(operand(regs, *a));
                    regs[dst.0 as usize] = v;
                    push_entry(&mut entries, &instr, v);
                    None
                }
                Instr::Load { dst, addr, width } => match mem.load(operand(regs, *addr), *width) {
                    Ok(v) => {
                        regs[dst.0 as usize] = v;
                        push_entry(&mut entries, &instr, v);
                        None
                    }
                    Err(f) => Some(f),
                },
                Instr::Store { addr, value, width } => {
                    match mem.store(operand(regs, *addr), *width, operand(regs, *value)) {
                        Ok(()) => {
                            push_entry(&mut entries, &instr, operand(regs, *value));
                            None
                        }
                        Err(f) => Some(f),
                    }
                }
                Instr::GlobalAddr { dst, global } => {
                    let v = program.globals[global.0 as usize].addr;
                    regs[dst.0 as usize] = v;
                    push_entry(&mut entries, &instr, v);
                    None
                }
                Instr::StackAlloc { dst, size } => {
                    let v = mem.stack_alloc(0, *size);
                    regs[dst.0 as usize] = v;
                    push_entry(&mut entries, &instr, v);
                    None
                }
                Instr::Alloc { dst, size } => {
                    let v = mem.heap_alloc(operand(regs, *size));
                    regs[dst.0 as usize] = v;
                    push_entry(&mut entries, &instr, v);
                    None
                }
                Instr::Free { addr } => mem.heap_free(operand(regs, *addr)).err(),
                Instr::Call { dst, func, args } => {
                    let callee = program.func(*func);
                    let mut cregs = vec![0u64; callee.n_regs];
                    for (i, a) in args.iter().enumerate() {
                        cregs[i] = operand(regs, *a);
                    }
                    let mark = mem.stack_watermark(0);
                    next_frame += 1;
                    frames.push((*func, BlockId(0), 0, cregs, *dst, mark, next_frame));
                    continue 'run;
                }
                Instr::Input { dst, source, width } => match env.read_input(*source, *width) {
                    Ok((v, _)) => {
                        regs[dst.0 as usize] = v;
                        push_entry(&mut entries, &instr, v);
                        None
                    }
                    Err(f) => Some(f),
                },
                Instr::Clock { dst } => {
                    let v = env.read_clock();
                    regs[dst.0 as usize] = v;
                    push_entry(&mut entries, &instr, v);
                    None
                }
                Instr::PtWrite { .. } | Instr::Print { .. } => None,
                Instr::Spawn { .. }
                | Instr::Join { .. }
                | Instr::Lock { .. }
                | Instr::Unlock { .. } => {
                    return Err("REPT tape supports single-threaded programs".into())
                }
                Instr::Assert { cond, message } => {
                    if operand(regs, *cond) == 0 {
                        Some(RuntimeFault::AssertFailed {
                            message: message.clone(),
                        })
                    } else {
                        None
                    }
                }
                Instr::Abort { message } => Some(RuntimeFault::Abort {
                    message: message.clone(),
                }),
            };
            if fault.is_some() {
                faulted = true;
                break 'run;
            }
            frames.last_mut().expect("frame").2 += 1;
        }

        let mut final_regs = HashMap::new();
        for (_, _, _, regs, _, _, fid) in &frames {
            for (i, &v) in regs.iter().enumerate() {
                final_regs.insert((*fid, i as u32), v);
            }
        }
        let mut final_mem = HashMap::new();
        for (base, bytes) in mem.dump() {
            for (k, &b) in bytes.iter().enumerate() {
                final_mem.insert(base + k as u64, b);
            }
        }
        if entries.len() > window {
            let excess = entries.len() - window;
            entries.drain(..excess);
        }
        if er_telemetry::enabled() {
            // Batched per tape: the recording loop above stays bare.
            er_telemetry::counter!("rept.tape_steps").add(steps);
            er_telemetry::counter!("rept.tape_entries").add(entries.len() as u64);
        }
        Ok(ConcreteTape {
            entries,
            final_regs,
            final_mem,
            faulted,
        })
    }
}

fn operand(regs: &[u64], op: Operand) -> u64 {
    match op {
        Operand::Reg(r) => regs[r.0 as usize],
        Operand::Imm(v) => v,
    }
}

/// Recovery grade for one tape entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// Recovered and equal to ground truth.
    Correct,
    /// Recovered but wrong (a no-alias guess failed).
    Wrong,
    /// Not recovered.
    Unknown,
}

/// Results of a REPT analysis over one window.
#[derive(Debug, Clone, Default)]
pub struct ReptReport {
    /// Entries analyzed.
    pub total: usize,
    /// Values recovered correctly.
    pub correct: usize,
    /// Values recovered incorrectly.
    pub wrong: usize,
    /// Values left unknown.
    pub unknown: usize,
}

impl ReptReport {
    /// Fraction of values recovered correctly.
    pub fn correct_rate(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.correct as f64 / self.total as f64
    }

    /// Fraction of values unknown or wrong (the paper's "incorrectly
    /// recovered" measure).
    pub fn degraded_rate(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.wrong + self.unknown) as f64 / self.total as f64
    }
}

/// The reverse-execution analysis.
#[derive(Debug, Clone, Copy)]
pub struct ReptAnalysis {
    /// REPT's best-effort mode: assume stores through unrecovered addresses
    /// alias nothing the analysis cares about. Disabling it yields the
    /// conservative variant that reports unknowns instead of wrong values.
    pub assume_no_alias: bool,
}

impl Default for ReptAnalysis {
    fn default() -> Self {
        ReptAnalysis {
            assume_no_alias: true,
        }
    }
}

impl ReptAnalysis {
    /// Like [`ReptAnalysis::analyze`] but also returns per-entry recovered
    /// values (diagnostics and tests).
    pub fn analyze_values(&self, tape: &ConcreteTape, window: usize) -> Vec<Option<u64>> {
        let start = tape.entries.len().saturating_sub(window);
        let entries = &tape.entries[start..];
        let mut values: Vec<Option<u64>> = vec![None; entries.len()];
        for _round in 0..3 {
            self.backward_pass(tape, entries, &mut values);
            self.forward_pass(tape, entries, &mut values);
        }
        values
    }

    /// Runs iterative backward/forward recovery (REPT's core loop) over the
    /// last `window` entries of `tape` and grades the result against ground
    /// truth.
    pub fn analyze(&self, tape: &ConcreteTape, window: usize) -> ReptReport {
        let _span = er_telemetry::span!("rept.analyze");
        let start = tape.entries.len().saturating_sub(window);
        let entries = &tape.entries[start..];
        let mut values: Vec<Option<u64>> = vec![None; entries.len()];
        for _round in 0..3 {
            self.backward_pass(tape, entries, &mut values);
            self.forward_pass(tape, entries, &mut values);
        }
        let mut report = ReptReport::default();
        for (e, v) in entries.iter().zip(&values) {
            if e.instr.dst().is_none() {
                continue; // stores/frees define no register value
            }
            report.total += 1;
            match v {
                Some(v) if *v == e.truth_dst => report.correct += 1,
                Some(_) => report.wrong += 1,
                None => report.unknown += 1,
            }
        }
        report
    }

    fn backward_pass(
        &self,
        tape: &ConcreteTape,
        entries: &[TapeEntry],
        values: &mut [Option<u64>],
    ) {
        // Known register values, keyed by (frame id, register).
        let mut regs: HashMap<(u64, u32), u64> = tape.final_regs.clone();
        // The analysis's picture of memory (starts as the crash dump).
        let mut mem: HashMap<u64, u8> = tape.final_mem.clone();
        let mut mem_valid = true;
        for (i, e) in entries.iter().enumerate().rev() {
            // Seed knowledge from previous passes.
            if let (Some(d), Some(v)) = (e.instr.dst(), values[i]) {
                regs.entry((e.frame, d.0)).or_insert(v);
            }
            let (_, believed) = self.step_back(e, &mut regs, &mut mem, &mut mem_valid);
            if values[i].is_none() {
                values[i] = believed;
            }
        }
    }

    /// Forward constant/dataflow propagation. Loads with a known address
    /// but no tracked write fall back to the *crash dump* when
    /// `assume_no_alias` is set — REPT's guess, and the source of its
    /// silently wrong values when a later store aliased the location.
    fn forward_pass(&self, tape: &ConcreteTape, entries: &[TapeEntry], values: &mut [Option<u64>]) {
        let mut regs: HashMap<(u64, u32), u64> = HashMap::new();
        let mut mem_fwd: HashMap<u64, u8> = HashMap::new();
        for (i, e) in entries.iter().enumerate() {
            let frame = e.frame;
            let reg_of = |regs: &HashMap<(u64, u32), u64>, op: Operand| -> Option<u64> {
                match op {
                    Operand::Imm(v) => Some(v),
                    Operand::Reg(r) => regs.get(&(frame, r.0)).copied(),
                }
            };
            let computed: Option<u64> = match &e.instr {
                Instr::Const { value, .. } => Some(*value),
                Instr::GlobalAddr { .. } => Some(e.truth_dst), // static layout is known
                Instr::Bin {
                    op, a, b, width, ..
                } => match (reg_of(&regs, *a), reg_of(&regs, *b)) {
                    (Some(x), Some(y)) => op.eval(*width, x, y),
                    _ => None,
                },
                Instr::Un { op, a, width, .. } => reg_of(&regs, *a).map(|x| op.eval(*width, x)),
                Instr::Cmp {
                    pred, a, b, width, ..
                } => match (reg_of(&regs, *a), reg_of(&regs, *b)) {
                    (Some(x), Some(y)) => Some(u64::from(pred.eval(*width, x, y))),
                    _ => None,
                },
                Instr::Cast { a, from, .. } => reg_of(&regs, *a).map(|x| from.trunc(x)),
                Instr::Load { addr, width, .. } => reg_of(&regs, *addr).and_then(|a| {
                    // Prefer writes tracked within the window.
                    let tracked = (0..width.bytes())
                        .map(|k| mem_fwd.get(&(a + k)).copied())
                        .collect::<Option<Vec<u8>>>();
                    match tracked {
                        Some(bytes) => {
                            let mut v = 0u64;
                            for (k, b) in bytes.iter().enumerate() {
                                v |= u64::from(*b) << (8 * k);
                            }
                            Some(v)
                        }
                        None if self.assume_no_alias => {
                            // The REPT guess: the dump still holds it.
                            let mut v = 0u64;
                            for k in 0..width.bytes() {
                                v |= u64::from(*tape.final_mem.get(&(a + k))?) << (8 * k);
                            }
                            Some(v)
                        }
                        None => None,
                    }
                }),
                _ => None,
            };
            if let Some(v) = computed {
                values[i].get_or_insert(v);
            }
            // Propagate register state forward using the best-known value.
            if let Some(d) = e.instr.dst() {
                match values[i] {
                    Some(v) => {
                        regs.insert((frame, d.0), v);
                    }
                    None => {
                        regs.remove(&(frame, d.0));
                    }
                }
            }
            if let Instr::Store { addr, value, width } = &e.instr {
                match (reg_of(&regs, *addr), reg_of(&regs, *value)) {
                    (Some(a), Some(v)) => {
                        for k in 0..width.bytes() {
                            mem_fwd.insert(a + k, (v >> (8 * k)) as u8);
                        }
                    }
                    (Some(a), None) => {
                        for k in 0..width.bytes() {
                            mem_fwd.remove(&(a + k));
                        }
                    }
                    (None, _) => {
                        // Store through an unknown address.
                        if !self.assume_no_alias {
                            mem_fwd.clear();
                        }
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn step_back(
        &self,
        e: &TapeEntry,
        regs: &mut HashMap<(u64, u32), u64>,
        mem: &mut HashMap<u64, u8>,
        mem_valid: &mut bool,
    ) -> (Recovery, Option<u64>) {
        let frame = e.frame;
        let key = |r: Reg| (frame, r.0);
        let reg_of = |regs: &HashMap<(u64, u32), u64>, op: Operand| -> Option<u64> {
            match op {
                Operand::Imm(v) => Some(v),
                Operand::Reg(r) => regs.get(&(frame, r.0)).copied(),
            }
        };
        let load_mem = |mem: &HashMap<u64, u8>, addr: u64, w: Width| -> Option<u64> {
            let mut v = 0u64;
            for k in 0..w.bytes() {
                v |= u64::from(*mem.get(&(addr + k))?) << (8 * k);
            }
            Some(v)
        };

        // The value this entry defined, as the analysis believes it.
        let dst = e.instr.dst();
        let believed = dst.and_then(|d| regs.get(&key(d)).copied());

        // Grade against ground truth. Backward memory is maintained
        // soundly (bytes are killed when stepping over stores), so loads
        // may recover from it even without the no-alias assumption.
        let mut believed = believed;
        if believed.is_none() {
            if let Instr::Load { addr, width, .. } = &e.instr {
                if *mem_valid || self.assume_no_alias {
                    if let Some(a) = reg_of(regs, *addr) {
                        if let Some(v) = load_mem(mem, a, *width) {
                            if let Some(d) = dst {
                                regs.insert(key(d), v);
                            }
                            believed = Some(v);
                        }
                    }
                }
            }
        }
        let grade = match believed {
            Some(v) if v == e.truth_dst => Recovery::Correct,
            Some(_) => Recovery::Wrong,
            None => Recovery::Unknown,
        };

        // Move to the pre-state: the def's previous value is unknown, and
        // inversion rules may teach us operand values.
        let believed_dst = believed;
        if let Some(d) = dst {
            regs.remove(&key(d));
        }
        match &e.instr {
            Instr::Bin {
                op, a, b, width, ..
            } => {
                if let Some(v) = believed_dst {
                    use er_minilang::value::BinOp::*;
                    // Invertible ops: with the result and one operand, the
                    // other follows.
                    let (ka, kb) = (reg_of(regs, *a), reg_of(regs, *b));
                    match (op, ka, kb) {
                        (Add, Some(av), None) => {
                            if let Operand::Reg(rb) = b {
                                regs.insert(key(*rb), width.trunc(v.wrapping_sub(av)));
                            }
                        }
                        (Add, None, Some(bv)) => {
                            if let Operand::Reg(ra) = a {
                                regs.insert(key(*ra), width.trunc(v.wrapping_sub(bv)));
                            }
                        }
                        (Sub, Some(av), None) => {
                            if let Operand::Reg(rb) = b {
                                regs.insert(key(*rb), width.trunc(av.wrapping_sub(v)));
                            }
                        }
                        (Sub, None, Some(bv)) => {
                            if let Operand::Reg(ra) = a {
                                regs.insert(key(*ra), width.trunc(v.wrapping_add(bv)));
                            }
                        }
                        (Xor, Some(av), None) => {
                            if let Operand::Reg(rb) = b {
                                regs.insert(key(*rb), width.trunc(v ^ av));
                            }
                        }
                        (Xor, None, Some(bv)) => {
                            if let Operand::Reg(ra) = a {
                                regs.insert(key(*ra), width.trunc(v ^ bv));
                            }
                        }
                        // `x | 0` and `x ^ 0` are the compiler's register
                        // moves; the source held the same value.
                        (Or, None, Some(0)) => {
                            if let Operand::Reg(ra) = a {
                                regs.insert(key(*ra), v);
                            }
                        }
                        (Or, Some(0), None) => {
                            if let Operand::Reg(rb) = b {
                                regs.insert(key(*rb), v);
                            }
                        }
                        _ => {}
                    }
                }
            }
            Instr::Load { addr, width, .. } => {
                // The memory at `addr` held the loaded value at this point.
                if let (Some(a), Some(v)) = (reg_of(regs, *addr), believed_dst) {
                    for k in 0..width.bytes() {
                        mem.insert(a + k, (v >> (8 * k)) as u8);
                    }
                }
            }
            Instr::Store { addr, value, width } => {
                match reg_of(regs, *addr) {
                    Some(a) => {
                        // Learn the stored value from the post-state memory,
                        // then kill those bytes (their pre-state is unknown).
                        if let (Operand::Reg(rv), Some(v)) = (value, load_mem(mem, a, *width)) {
                            regs.entry(key(*rv)).or_insert(v);
                        }
                        for k in 0..width.bytes() {
                            mem.remove(&(a + k));
                        }
                    }
                    None => {
                        // A store through an unrecovered address. REPT's
                        // best-effort mode assumes it aliases nothing;
                        // the conservative mode abandons the memory picture.
                        if !self.assume_no_alias {
                            mem.clear();
                            *mem_valid = false;
                        }
                    }
                }
            }
            _ => {}
        }
        (grade, believed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_minilang::compile;

    fn tape_for(src: &str, inputs: &[(u32, Vec<u8>)]) -> (Program, ConcreteTape) {
        let program = compile(src).unwrap();
        let mut env = Env::new();
        for (s, b) in inputs {
            env.push_input(*s, b);
        }
        let tape = ConcreteTape::record(&program, env, 1_000_000).unwrap();
        (program, tape)
    }

    #[test]
    fn short_windows_recover_well() {
        let src = r#"
            fn main() {
                let a: u32 = input_u32(0);
                let b: u32 = a + 7;
                let c: u32 = b * 3;
                store32(alloc(16), c);
                abort("crash");
            }
        "#;
        let (_, tape) = tape_for(src, &[(0, 5u32.to_le_bytes().to_vec())]);
        assert!(tape.faulted);
        let report = ReptAnalysis::default().analyze(&tape, 64);
        assert!(
            report.correct_rate() > 0.8,
            "short window should recover most values: {report:?}"
        );
    }

    #[test]
    fn recovery_decays_with_window_length() {
        // A loop that overwrites its working set repeatedly: older values
        // are destroyed, so larger windows recover proportionally less.
        let src = r#"
            global TBL: [u32; 64];
            fn main() {
                let n: u32 = input_u32(0);
                let acc: u32 = 0;
                for i: u32 = 0; i < n; i = i + 1 {
                    let x: u32 = (i * 2654435761) ^ acc;
                    acc = x % 255;
                    TBL[i % 64] = acc;
                }
                assert(acc == 999999, "always fails");
            }
        "#;
        let (_, tape) = tape_for(src, &[(0, 4000u32.to_le_bytes().to_vec())]);
        assert!(tape.faulted);
        let rept = ReptAnalysis::default();
        let small = rept.analyze(&tape, 200);
        let large = rept.analyze(&tape, 20_000);
        assert!(
            large.degraded_rate() > small.degraded_rate(),
            "long windows degrade: small {:?} vs large {:?}",
            small,
            large
        );
        assert!(
            large.degraded_rate() > 0.15,
            "the paper reports 15%+ degradation on long traces: {large:?}"
        );
    }

    #[test]
    fn no_alias_mode_produces_wrong_values() {
        // Writes through a data-dependent (unrecoverable) pointer alias the
        // location a later load reads: the no-alias guess yields wrong
        // values, the conservative mode yields unknowns.
        let src = r#"
            global SLOTS: [u32; 32];
            fn main() {
                let k: u32 = input_u32(0);
                for round: u32 = 0; round < 200; round = round + 1 {
                    let idx: u32 = (k + round * 7) % 32;
                    SLOTS[idx] = round;
                    let probe: u32 = SLOTS[(k + round) % 32];
                    let sink: u32 = probe + 1;
                    print(sink);
                }
                abort("done");
            }
        "#;
        let (_, tape) = tape_for(src, &[(0, 3u32.to_le_bytes().to_vec())]);
        let best_effort = ReptAnalysis {
            assume_no_alias: true,
        }
        .analyze(&tape, 5_000);
        let conservative = ReptAnalysis {
            assume_no_alias: false,
        }
        .analyze(&tape, 5_000);
        assert!(
            best_effort.wrong > 0,
            "best-effort REPT must produce some wrong values: {best_effort:?}"
        );
        assert!(
            conservative.wrong <= best_effort.wrong,
            "conservative mode trades wrong for unknown"
        );
    }

    #[test]
    fn multithreaded_programs_are_rejected() {
        let src = "fn w() {}\nfn main() { let t: u64 = spawn w(); join(t); }";
        let program = compile(src).unwrap();
        assert!(ConcreteTape::record(&program, Env::new(), 100).is_err());
    }

    #[test]
    fn completed_runs_also_tape() {
        let src = "fn main() { let a: u32 = 1 + 2; print(a); }";
        let (_, tape) = tape_for(src, &[]);
        assert!(!tape.faulted);
        assert!(!tape.entries.is_empty());
    }
}
