//! Property tests for the language substrate: machine arithmetic, the
//! memory model against a reference map, and interpreter determinism.

use er_minilang::compile;
use er_minilang::env::Env;
use er_minilang::interp::{Machine, RunOutcome, SchedConfig};
use er_minilang::ir::Program;
use er_minilang::mem::{Memory, HEAP_BASE};
use er_minilang::trace::VecSink;
use er_minilang::value::{BinOp, CmpOp, UnOp, Width};
use proptest::prelude::*;
use std::collections::HashMap;

fn width() -> impl Strategy<Value = Width> {
    prop_oneof![
        Just(Width::W8),
        Just(Width::W16),
        Just(Width::W32),
        Just(Width::W64)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Wrapping arithmetic agrees with 128-bit reference arithmetic.
    #[test]
    fn binops_match_wide_reference(w in width(), a in any::<u64>(), b in any::<u64>()) {
        let mask = u128::from(w.mask());
        let (ta, tb) = (u128::from(w.trunc(a)), u128::from(w.trunc(b)));
        let cases = [
            (BinOp::Add, (ta + tb) & mask),
            (BinOp::Sub, (ta.wrapping_sub(tb)) & mask),
            (BinOp::Mul, (ta * tb) & mask),
            (BinOp::And, ta & tb),
            (BinOp::Or, ta | tb),
            (BinOp::Xor, ta ^ tb),
        ];
        for (op, expect) in cases {
            prop_assert_eq!(op.eval(w, a, b), Some(expect as u64), "{:?}", op);
        }
        if w.trunc(b) != 0 {
            prop_assert_eq!(BinOp::UDiv.eval(w, a, b), Some((ta / tb) as u64));
            prop_assert_eq!(BinOp::URem.eval(w, a, b), Some((ta % tb) as u64));
        } else {
            prop_assert_eq!(BinOp::UDiv.eval(w, a, b), None);
        }
    }

    /// Results always fit the operation width.
    #[test]
    fn results_fit_width(w in width(), a in any::<u64>(), b in any::<u64>()) {
        for op in [
            BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::And, BinOp::Or,
            BinOp::Xor, BinOp::Shl, BinOp::LShr, BinOp::AShr,
        ] {
            if let Some(v) = op.eval(w, a, b) {
                prop_assert_eq!(v & !w.mask(), 0);
            }
        }
        for op in [UnOp::Neg, UnOp::Not, UnOp::LNot] {
            prop_assert_eq!(op.eval(w, a) & !w.mask(), 0);
        }
    }

    /// Comparison predicates are mutually consistent.
    #[test]
    fn comparisons_are_consistent(w in width(), a in any::<u64>(), b in any::<u64>()) {
        let eq = CmpOp::Eq.eval(w, a, b);
        let ne = CmpOp::Ne.eval(w, a, b);
        prop_assert_ne!(eq, ne);
        let ult = CmpOp::Ult.eval(w, a, b);
        let ule = CmpOp::Ule.eval(w, a, b);
        prop_assert_eq!(ule, ult || eq);
        let slt = CmpOp::Slt.eval(w, a, b);
        let sle = CmpOp::Sle.eval(w, a, b);
        prop_assert_eq!(sle, slt || eq);
        // Total order: exactly one of a<b, a==b, b<a.
        let gt = CmpOp::Ult.eval(w, b, a);
        prop_assert_eq!(u8::from(ult) + u8::from(eq) + u8::from(gt), 1);
    }

    /// The heap behaves like a byte map: random aligned stores and loads
    /// agree with a HashMap reference model.
    #[test]
    fn memory_matches_reference_model(
        ops in prop::collection::vec(
            (0u64..256, width(), any::<u64>(), any::<bool>()),
            1..80,
        ),
    ) {
        let mut mem = Memory::new(&Program::default());
        let base = mem.heap_alloc(512);
        prop_assert_eq!(base, HEAP_BASE);
        let mut reference: HashMap<u64, u8> = HashMap::new();
        for (off, w, value, is_store) in ops {
            let addr = base + (off % (512 - 8));
            if is_store {
                mem.store(addr, w, value).unwrap();
                for k in 0..w.bytes() {
                    reference.insert(addr + k, (value >> (8 * k)) as u8);
                }
            } else {
                let got = mem.load(addr, w).unwrap();
                let mut expect = 0u64;
                for k in 0..w.bytes() {
                    expect |= u64::from(*reference.get(&(addr + k)).unwrap_or(&0)) << (8 * k);
                }
                prop_assert_eq!(got, expect);
            }
        }
    }

    /// Same program + same inputs + same schedule => identical outputs,
    /// traces, and instruction counts (the determinism rr and ER both rely
    /// on).
    #[test]
    fn interpreter_is_deterministic(
        seed in any::<u64>(),
        quantum in 16u64..2000,
        inputs in prop::collection::vec(any::<u32>(), 4..16),
    ) {
        let src = r#"
            global ACC: [u32; 32];
            fn work(n: u32) -> u32 {
                let h: u32 = n;
                for i: u32 = 0; i < 50; i = i + 1 {
                    h = (h ^ i) * 31 + 7;
                    ACC[i % 32] = h;
                }
                return h;
            }
            fn main() {
                let total: u32 = 0;
                for r: u32 = 0; r < 4; r = r + 1 {
                    total = total + work(input_u32(0));
                }
                print(total);
            }
        "#;
        let program = compile(src).unwrap();
        let sched = SchedConfig { quantum, seed, max_instrs: 10_000_000 };
        let run = || {
            let mut env = Env::new();
            for v in &inputs {
                env.push_input(0, &v.to_le_bytes());
            }
            Machine::with_sink(&program, env, VecSink::new())
                .with_sched(sched)
                .run()
        };
        let (r1, r2) = (run(), run());
        prop_assert_eq!(&r1.outcome, &r2.outcome);
        prop_assert_eq!(&r1.output, &r2.output);
        prop_assert_eq!(r1.instr_count, r2.instr_count);
        prop_assert_eq!(&r1.sink.events, &r2.sink.events);
        prop_assert!(matches!(r1.outcome, RunOutcome::Completed));
    }

    /// Source-level arithmetic agrees with Rust arithmetic: compile a
    /// two-input expression and compare the printed result.
    #[test]
    fn compiled_arithmetic_matches_rust(a in any::<u32>(), b in 1u32..u32::MAX) {
        let src = r#"
            fn main() {
                let a: u32 = input_u32(0);
                let b: u32 = input_u32(0);
                print(((a * 3 + b) ^ (a >> 5)) % b);
            }
        "#;
        let program = compile(src).unwrap();
        let mut env = Env::new();
        env.push_input(0, &a.to_le_bytes());
        env.push_input(0, &b.to_le_bytes());
        let r = Machine::new(&program, env).run();
        let expect = (a.wrapping_mul(3).wrapping_add(b) ^ (a >> 5)) % b;
        prop_assert_eq!(r.output, vec![u64::from(expect)]);
    }
}
