//! Recursive-descent parser for the mini systems language.

use crate::ast::*;
use crate::error::{CompileError, Stage};
use crate::lexer::{parse_int, Token, TokenKind};
use crate::span::Span;
use crate::value::Width;

/// Parses a token stream into a [`Unit`].
///
/// # Errors
///
/// Returns a [`CompileError`] at the first syntactic error.
pub fn parse(tokens: &[Token], source: &str) -> Result<Unit, CompileError> {
    Parser {
        tokens,
        source,
        pos: 0,
    }
    .unit()
}

struct Parser<'a> {
    tokens: &'a [Token],
    source: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Token {
        self.tokens[self.pos]
    }

    fn peek2(&self) -> Token {
        self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos];
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: TokenKind) -> bool {
        self.peek().kind == kind
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<Token, CompileError> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek().kind)))
        }
    }

    fn err(&self, message: String) -> CompileError {
        CompileError::new(Stage::Parse, message, self.peek().span)
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), CompileError> {
        let t = self.expect(TokenKind::Ident, what)?;
        Ok((t.text(self.source).to_string(), t.span))
    }

    fn unit(&mut self) -> Result<Unit, CompileError> {
        let mut unit = Unit::default();
        while !self.at(TokenKind::Eof) {
            if self.at(TokenKind::Global) {
                unit.globals.push(self.global()?);
            } else if self.at(TokenKind::Fn) {
                unit.funcs.push(self.func()?);
            } else {
                return Err(self.err("expected `global` or `fn` at top level".into()));
            }
        }
        Ok(unit)
    }

    fn global(&mut self) -> Result<GlobalDecl, CompileError> {
        let start = self.expect(TokenKind::Global, "`global`")?.span;
        let (name, _) = self.ident("global name")?;
        self.expect(TokenKind::Colon, "`:`")?;
        let ty = self.ty()?;
        let init = if self.eat(TokenKind::Assign) {
            let t = self.expect(TokenKind::Int, "integer initializer")?;
            Some(parse_int(t.text(self.source), t.span)?)
        } else {
            None
        };
        let end = self.expect(TokenKind::Semi, "`;`")?.span;
        Ok(GlobalDecl {
            name,
            ty,
            init,
            span: start.merge(end),
        })
    }

    fn ty(&mut self) -> Result<Type, CompileError> {
        if self.eat(TokenKind::LBracket) {
            let elem = self.scalar_width()?;
            self.expect(TokenKind::Semi, "`;` in array type")?;
            let t = self.expect(TokenKind::Int, "array length")?;
            let len = parse_int(t.text(self.source), t.span)?;
            self.expect(TokenKind::RBracket, "`]`")?;
            if len == 0 {
                return Err(self.err("array length must be positive".into()));
            }
            return Ok(Type::Array(elem, len));
        }
        if self.eat(TokenKind::BoolTy) {
            return Ok(Type::Bool);
        }
        Ok(Type::Int(self.scalar_width()?))
    }

    fn scalar_width(&mut self) -> Result<Width, CompileError> {
        let t = self.bump();
        match t.kind {
            TokenKind::U8 => Ok(Width::W8),
            TokenKind::U16 => Ok(Width::W16),
            TokenKind::U32 => Ok(Width::W32),
            TokenKind::U64 => Ok(Width::W64),
            _ => Err(CompileError::new(
                Stage::Parse,
                format!("expected integer type, found {:?}", t.kind),
                t.span,
            )),
        }
    }

    fn func(&mut self) -> Result<FuncDecl, CompileError> {
        let start = self.expect(TokenKind::Fn, "`fn`")?.span;
        let (name, _) = self.ident("function name")?;
        self.expect(TokenKind::LParen, "`(`")?;
        let mut params = Vec::new();
        while !self.at(TokenKind::RParen) {
            let (pname, pspan) = self.ident("parameter name")?;
            self.expect(TokenKind::Colon, "`:`")?;
            let ty = self.ty()?;
            if matches!(ty, Type::Array(..)) {
                return Err(CompileError::new(
                    Stage::Parse,
                    "array parameters are not supported; pass a pointer (`u64`)",
                    pspan,
                ));
            }
            params.push(Param {
                name: pname,
                ty,
                span: pspan,
            });
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen, "`)`")?;
        let ret = if self.eat(TokenKind::Arrow) {
            Some(self.ty()?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(FuncDecl {
            name,
            params,
            ret,
            body,
            span: start,
        })
    }

    fn block(&mut self) -> Result<Block, CompileError> {
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while !self.at(TokenKind::RBrace) && !self.at(TokenKind::Eof) {
            stmts.push(self.stmt()?);
        }
        self.expect(TokenKind::RBrace, "`}`")?;
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        match self.peek().kind {
            TokenKind::Let => self.let_stmt(),
            TokenKind::Var => self.var_stmt(),
            TokenKind::If => self.if_stmt(),
            TokenKind::While => self.while_stmt(),
            TokenKind::For => self.for_stmt(),
            TokenKind::Return => {
                let span = self.bump().span;
                let value = if self.at(TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi, "`;`")?;
                Ok(Stmt::Return { value, span })
            }
            TokenKind::Break => {
                let span = self.bump().span;
                self.expect(TokenKind::Semi, "`;`")?;
                Ok(Stmt::Break(span))
            }
            TokenKind::Continue => {
                let span = self.bump().span;
                self.expect(TokenKind::Semi, "`;`")?;
                Ok(Stmt::Continue(span))
            }
            _ => self.assign_or_expr_stmt(),
        }
    }

    fn let_stmt(&mut self) -> Result<Stmt, CompileError> {
        let start = self.bump().span; // `let`
        let (name, _) = self.ident("variable name")?;
        self.expect(TokenKind::Colon, "`:`")?;
        let ty = self.ty()?;
        if matches!(ty, Type::Array(..)) {
            return Err(self.err("`let` binds scalars; use `var` for arrays".into()));
        }
        self.expect(TokenKind::Assign, "`=`")?;
        let init = self.expr()?;
        let end = self.expect(TokenKind::Semi, "`;`")?.span;
        Ok(Stmt::Let {
            name,
            ty,
            init,
            span: start.merge(end),
        })
    }

    fn var_stmt(&mut self) -> Result<Stmt, CompileError> {
        let start = self.bump().span; // `var`
        let (name, _) = self.ident("variable name")?;
        self.expect(TokenKind::Colon, "`:`")?;
        let ty = self.ty()?;
        let end = self.expect(TokenKind::Semi, "`;`")?.span;
        match ty {
            Type::Array(elem, len) => Ok(Stmt::VarArray {
                name,
                elem,
                len,
                span: start.merge(end),
            }),
            _ => Err(CompileError::new(
                Stage::Parse,
                "`var` declares stack arrays; use `let` for scalars",
                start.merge(end),
            )),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, CompileError> {
        let span = self.bump().span; // `if`
        let cond = self.expr()?;
        let then_blk = self.block()?;
        let else_blk = if self.eat(TokenKind::Else) {
            if self.at(TokenKind::If) {
                Block {
                    stmts: vec![self.if_stmt()?],
                }
            } else {
                self.block()?
            }
        } else {
            Block::default()
        };
        Ok(Stmt::If {
            cond,
            then_blk,
            else_blk,
            span,
        })
    }

    fn while_stmt(&mut self) -> Result<Stmt, CompileError> {
        let span = self.bump().span; // `while`
        let cond = self.expr()?;
        let body = self.block()?;
        Ok(Stmt::While { cond, body, span })
    }

    /// `for NAME: TYPE = START; COND; STEP-ASSIGN { BODY }` sugar for a
    /// `let` + `while`.
    fn for_stmt(&mut self) -> Result<Stmt, CompileError> {
        let span = self.bump().span; // `for`
        let (name, _) = self.ident("loop variable")?;
        self.expect(TokenKind::Colon, "`:`")?;
        let ty = self.ty()?;
        self.expect(TokenKind::Assign, "`=`")?;
        let init = self.expr()?;
        self.expect(TokenKind::Semi, "`;`")?;
        let cond = self.expr()?;
        self.expect(TokenKind::Semi, "`;`")?;
        let step_target = self.lvalue()?;
        self.expect(TokenKind::Assign, "`=`")?;
        let step_value = self.expr()?;
        let mut body = self.block()?;
        body.stmts.push(Stmt::Assign {
            target: step_target,
            value: step_value,
            span,
        });
        // Desugars to: { let name = init; while cond { body; step } } by
        // wrapping in an `If` with constant-true condition to create a scope.
        let inner = vec![
            Stmt::Let {
                name,
                ty,
                init,
                span,
            },
            Stmt::While { cond, body, span },
        ];
        Ok(Stmt::If {
            cond: Expr::Bool(true, span),
            then_blk: Block { stmts: inner },
            else_blk: Block::default(),
            span,
        })
    }

    fn assign_or_expr_stmt(&mut self) -> Result<Stmt, CompileError> {
        // Lookahead: IDENT `=` ... or IDENT `[` ... `]` `=` ... is assignment.
        if self.at(TokenKind::Ident) {
            if self.peek2().kind == TokenKind::Assign {
                let target = self.lvalue()?;
                let span = self.expect(TokenKind::Assign, "`=`")?.span;
                let value = self.expr()?;
                self.expect(TokenKind::Semi, "`;`")?;
                return Ok(Stmt::Assign {
                    target,
                    value,
                    span,
                });
            }
            if self.peek2().kind == TokenKind::LBracket {
                // Could be `a[i] = ...` or an expression like `a[i] + 1`. Try
                // assignment by scanning for `] =` with bracket balance.
                if self.lookahead_index_assign() {
                    let target = self.lvalue()?;
                    let span = self.expect(TokenKind::Assign, "`=`")?.span;
                    let value = self.expr()?;
                    self.expect(TokenKind::Semi, "`;`")?;
                    return Ok(Stmt::Assign {
                        target,
                        value,
                        span,
                    });
                }
            }
        }
        let e = self.expr()?;
        self.expect(TokenKind::Semi, "`;`")?;
        Ok(Stmt::Expr(e))
    }

    fn lookahead_index_assign(&self) -> bool {
        let mut depth = 0usize;
        let mut i = self.pos + 1; // at `[`
        while i < self.tokens.len() {
            match self.tokens[i].kind {
                TokenKind::LBracket => depth += 1,
                TokenKind::RBracket => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1 < self.tokens.len()
                            && self.tokens[i + 1].kind == TokenKind::Assign;
                    }
                }
                TokenKind::Semi | TokenKind::Eof => return false,
                _ => {}
            }
            i += 1;
        }
        false
    }

    fn lvalue(&mut self) -> Result<LValue, CompileError> {
        let (name, span) = self.ident("assignment target")?;
        if self.eat(TokenKind::LBracket) {
            let index = self.expr()?;
            self.expect(TokenKind::RBracket, "`]`")?;
            Ok(LValue::Index {
                array: name,
                index: Box::new(index),
                span,
            })
        } else {
            Ok(LValue::Name(name, span))
        }
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.bin_expr(0)
    }

    fn bin_expr(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, prec) = match self.peek().kind {
                TokenKind::OrOr => (AstBinOp::LOr, 1),
                TokenKind::AndAnd => (AstBinOp::LAnd, 2),
                TokenKind::Pipe => (AstBinOp::BitOr, 3),
                TokenKind::Caret => (AstBinOp::BitXor, 4),
                TokenKind::Amp => (AstBinOp::BitAnd, 5),
                TokenKind::EqEq => (AstBinOp::Eq, 6),
                TokenKind::Ne => (AstBinOp::Ne, 6),
                TokenKind::Lt => (AstBinOp::Lt, 7),
                TokenKind::Le => (AstBinOp::Le, 7),
                TokenKind::Gt => (AstBinOp::Gt, 7),
                TokenKind::Ge => (AstBinOp::Ge, 7),
                TokenKind::Shl => (AstBinOp::Shl, 8),
                TokenKind::Shr => (AstBinOp::Shr, 8),
                TokenKind::Plus => (AstBinOp::Add, 9),
                TokenKind::Minus => (AstBinOp::Sub, 9),
                TokenKind::Star => (AstBinOp::Mul, 10),
                TokenKind::Slash => (AstBinOp::Div, 10),
                TokenKind::Percent => (AstBinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let span = self.bump().span;
            let rhs = self.bin_expr(prec + 1)?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        // Postfix `as TYPE` binds looser than arithmetic here by being
        // applied after the operator loop at min_prec 0 only.
        while min_prec == 0 && self.at(TokenKind::As) {
            let span = self.bump().span;
            let ty = self.ty()?;
            lhs = Expr::Cast {
                expr: Box::new(lhs),
                ty,
                span,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        let t = self.peek();
        let op = match t.kind {
            TokenKind::Minus => Some(AstUnOp::Neg),
            TokenKind::Tilde => Some(AstUnOp::BitNot),
            TokenKind::Bang => Some(AstUnOp::LNot),
            _ => None,
        };
        if let Some(op) = op {
            let span = self.bump().span;
            let expr = self.unary_expr()?;
            return Ok(Expr::Un {
                op,
                expr: Box::new(expr),
                span,
            });
        }
        if t.kind == TokenKind::Amp {
            let span = self.bump().span;
            let (name, _) = self.ident("array name after `&`")?;
            return Ok(Expr::AddrOf(name, span));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, CompileError> {
        let t = self.peek();
        match t.kind {
            TokenKind::Int => {
                let t = self.bump();
                Ok(Expr::Int(parse_int(t.text(self.source), t.span)?, t.span))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::Bool(true, t.span))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::Bool(false, t.span))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                // Allow casts inside parens: `(x as u64)`.
                let e = if self.at(TokenKind::As) {
                    let span = self.bump().span;
                    let ty = self.ty()?;
                    Expr::Cast {
                        expr: Box::new(e),
                        ty,
                        span,
                    }
                } else {
                    e
                };
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::Spawn => {
                let span = self.bump().span;
                let (callee, _) = self.ident("function name after `spawn`")?;
                self.expect(TokenKind::LParen, "`(`")?;
                let args = self.call_args()?;
                Ok(Expr::Spawn { callee, args, span })
            }
            TokenKind::Ident => {
                let (name, span) = self.ident("expression")?;
                if self.eat(TokenKind::LParen) {
                    let (args, str_arg) = self.call_args_with_str()?;
                    Ok(Expr::Call {
                        callee: name,
                        args,
                        str_arg,
                        span,
                    })
                } else if self.eat(TokenKind::LBracket) {
                    let index = self.expr()?;
                    self.expect(TokenKind::RBracket, "`]`")?;
                    Ok(Expr::Index {
                        array: name,
                        index: Box::new(index),
                        span,
                    })
                } else {
                    Ok(Expr::Name(name, span))
                }
            }
            _ => Err(self.err(format!("expected expression, found {:?}", t.kind))),
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, CompileError> {
        let (args, str_arg) = self.call_args_with_str()?;
        if str_arg.is_some() {
            return Err(self.err("string argument not allowed here".into()));
        }
        Ok(args)
    }

    fn call_args_with_str(&mut self) -> Result<(Vec<Expr>, Option<String>), CompileError> {
        let mut args = Vec::new();
        let mut str_arg = None;
        while !self.at(TokenKind::RParen) {
            if self.at(TokenKind::Str) {
                let t = self.bump();
                let text = t.text(self.source);
                str_arg = Some(text[1..text.len() - 1].to_string());
            } else {
                args.push(self.expr()?);
            }
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen, "`)`")?;
        Ok((args, str_arg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Unit {
        let toks = lex(src).unwrap();
        parse(&toks, src).unwrap()
    }

    fn parse_err(src: &str) -> CompileError {
        let toks = lex(src).unwrap();
        parse(&toks, src).unwrap_err()
    }

    #[test]
    fn parses_globals_and_funcs() {
        let u = parse_src("global V: [u32; 256];\nglobal n: u32 = 7;\nfn main() { print(n); }");
        assert_eq!(u.globals.len(), 2);
        assert_eq!(u.globals[0].ty, Type::Array(Width::W32, 256));
        assert_eq!(u.globals[1].init, Some(7));
        assert_eq!(u.funcs.len(), 1);
    }

    #[test]
    fn parses_precedence() {
        let u = parse_src("fn f() -> u32 { return 1 + 2 * 3 == 7; }");
        let Stmt::Return { value: Some(e), .. } = &u.funcs[0].body.stmts[0] else {
            panic!("expected return");
        };
        let Expr::Bin {
            op: AstBinOp::Eq, ..
        } = e
        else {
            panic!("== should be outermost, got {e:?}");
        };
    }

    #[test]
    fn parses_index_assignment_vs_expr() {
        let u = parse_src("global V: [u32; 4];\nfn f(i: u32) { V[i] = V[i] + 1; print(V[i]); }");
        assert!(matches!(u.funcs[0].body.stmts[0], Stmt::Assign { .. }));
        assert!(matches!(u.funcs[0].body.stmts[1], Stmt::Expr(_)));
    }

    #[test]
    fn parses_if_else_chain_and_while() {
        let u = parse_src(
            "fn f(x: u32) { if x == 0 { print(0); } else if x == 1 { print(1); } else { while x > 2 { x = x - 1; } } }",
        );
        let Stmt::If { else_blk, .. } = &u.funcs[0].body.stmts[0] else {
            panic!()
        };
        assert!(matches!(else_blk.stmts[0], Stmt::If { .. }));
    }

    #[test]
    fn parses_for_sugar() {
        let u = parse_src("fn f() { for i: u32 = 0; i < 10; i = i + 1 { print(i); } }");
        // for desugars to if(true){ let; while }
        let Stmt::If { then_blk, .. } = &u.funcs[0].body.stmts[0] else {
            panic!()
        };
        assert!(matches!(then_blk.stmts[0], Stmt::Let { .. }));
        assert!(matches!(then_blk.stmts[1], Stmt::While { .. }));
    }

    #[test]
    fn parses_spawn_and_calls() {
        let u = parse_src(
            "fn w(a: u32) {}\nfn main() { let t: u64 = spawn w(3); join(t); assert(t == 0, \"first tid\"); }",
        );
        assert_eq!(u.funcs[1].body.stmts.len(), 3);
        let Stmt::Let { init, .. } = &u.funcs[1].body.stmts[0] else {
            panic!()
        };
        assert!(matches!(init, Expr::Spawn { .. }));
    }

    #[test]
    fn parses_casts_and_addr_of() {
        parse_src("global A: [u8; 8];\nfn f(x: u32) { let p: u64 = &A; let y: u64 = x as u64; let z: u64 = (x + 1 as u64); }");
    }

    #[test]
    fn rejects_array_params_and_let_arrays() {
        assert!(parse_err("fn f(a: [u32; 4]) {}").message.contains("array"));
        assert!(parse_err("fn f() { let a: [u32; 4] = 0; }")
            .message
            .contains("var"));
    }

    #[test]
    fn rejects_stray_tokens() {
        let e = parse_err("fn f() { let x: u32 = ; }");
        assert!(e.message.contains("expected expression"));
        parse_err("let x: u32 = 3;");
    }
}
