//! Lowers the typed AST to the register IR.

use crate::ast::{AstBinOp, AstUnOp, Type};
use crate::ir::*;
use crate::types::{Builtin, Callee, TExpr, TExprKind, TFunc, TLValue, TStmt, TUnit};
use crate::value::{BinOp, CmpOp, UnOp, Width};

/// Base virtual address of the global segment (see [`crate::mem`]).
pub const GLOBAL_BASE: u64 = 0x1000_0000;

/// Lowers a type-checked unit to an IR [`Program`].
pub fn lower(unit: &TUnit) -> Program {
    let mut globals = Vec::new();
    let mut addr = GLOBAL_BASE;
    for g in &unit.globals {
        let (size, elem) = match g.ty {
            Type::Bool => (1, Width::W8),
            Type::Int(w) => (w.bytes(), w),
            Type::Array(w, n) => (w.bytes() * n, w),
        };
        globals.push(Global {
            name: g.name.clone(),
            size,
            elem,
            init: g.init.unwrap_or(0),
            addr,
        });
        addr += size.div_ceil(8) * 8;
    }

    let funcs = unit
        .funcs
        .iter()
        .map(|f| FuncLowerer::new(f).lower())
        .collect();
    Program {
        funcs,
        globals,
        entry: FuncId(unit.entry as u32),
    }
}

/// Where a local slot lives at IR level.
#[derive(Debug, Clone, Copy)]
enum Place {
    /// Scalar locals live in a register.
    Scalar(Reg),
    /// Array locals live in stack memory; the register holds the base.
    ArrayBase(Reg),
}

struct FuncLowerer<'a> {
    func: &'a TFunc,
    blocks: Vec<Block>,
    cur: BlockId,
    next_reg: u32,
    places: Vec<Place>,
    /// (continue target, break target) for each enclosing loop.
    loops: Vec<(BlockId, BlockId)>,
}

impl<'a> FuncLowerer<'a> {
    fn new(func: &'a TFunc) -> Self {
        FuncLowerer {
            func,
            blocks: vec![Block::default()],
            cur: BlockId(0),
            next_reg: 0,
            places: Vec::new(),
            loops: Vec::new(),
        }
    }

    fn fresh(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    fn emit(&mut self, i: Instr) {
        self.blocks[self.cur.0 as usize].instrs.push(i);
    }

    fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        BlockId((self.blocks.len() - 1) as u32)
    }

    fn set_term(&mut self, t: Terminator) {
        let b = &mut self.blocks[self.cur.0 as usize];
        if b.term.is_none() {
            b.term = Some(t);
        }
    }

    fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    fn terminated(&self) -> bool {
        self.blocks[self.cur.0 as usize].term.is_some()
    }

    fn lower(mut self) -> Func {
        // Parameters occupy r0..rN; array locals get their stack storage at
        // entry so that inner scopes can be allocated once per activation.
        for (slot, info) in self.func.locals.iter().enumerate() {
            let place = match info.ty {
                Type::Array(w, n) => {
                    let r = self.fresh();
                    if slot < self.func.n_params {
                        unreachable!("array parameters are rejected by the parser");
                    }
                    self.places.push(Place::ArrayBase(r));
                    self.emit(Instr::StackAlloc {
                        dst: r,
                        size: w.bytes() * n,
                    });
                    continue;
                }
                _ => Place::Scalar(self.fresh()),
            };
            self.places.push(place);
        }
        for stmt in &self.func.body {
            self.stmt(stmt);
        }
        self.set_term(Terminator::Return(None));
        // Any unterminated blocks created by dead code also return.
        for b in &mut self.blocks {
            if b.term.is_none() {
                b.term = Some(Terminator::Return(None));
            }
        }
        Func {
            name: self.func.name.clone(),
            n_params: self.func.n_params,
            n_regs: self.next_reg as usize,
            blocks: self.blocks,
        }
    }

    fn stmt(&mut self, s: &TStmt) {
        if self.terminated() {
            // Dead code after return/break/continue: still lower into a fresh
            // unreachable block to keep ids stable, then drop back.
            let dead = self.new_block();
            self.switch_to(dead);
        }
        match s {
            TStmt::Let { slot, init } => {
                let v = self.expr(init);
                let Place::Scalar(r) = self.places[*slot] else {
                    unreachable!("let target is scalar");
                };
                self.assign_reg(r, v);
            }
            TStmt::VarArray { .. } => {
                // Storage was allocated at entry; nothing to do here.
            }
            TStmt::Assign { target, value } => {
                let v = self.expr(value);
                // The checker guarantees `value.ty` equals the target's type,
                // so the store width comes straight from the typed value.
                let w = value.ty.scalar_width();
                match target {
                    TLValue::Local(slot) => {
                        let Place::Scalar(r) = self.places[*slot] else {
                            unreachable!("scalar assignment to array slot");
                        };
                        self.assign_reg(r, v);
                    }
                    TLValue::Global(gid) => {
                        let g = GlobalId(*gid as u32);
                        let addr = self.fresh();
                        self.emit(Instr::GlobalAddr {
                            dst: addr,
                            global: g,
                        });
                        self.emit(Instr::Store {
                            addr: addr.into(),
                            value: v,
                            width: w,
                        });
                    }
                    TLValue::IndexGlobal { gid, index } => {
                        let base = self.fresh();
                        self.emit(Instr::GlobalAddr {
                            dst: base,
                            global: GlobalId(*gid as u32),
                        });
                        let addr = self.element_addr(base.into(), index, w);
                        self.emit(Instr::Store {
                            addr,
                            value: v,
                            width: w,
                        });
                    }
                    TLValue::IndexLocal { slot, index } => {
                        let (base, _) = self.local_array(*slot);
                        let addr = self.element_addr(base, index, w);
                        self.emit(Instr::Store {
                            addr,
                            value: v,
                            width: w,
                        });
                    }
                }
            }
            TStmt::Expr(e) => {
                self.expr(e);
            }
            TStmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self.expr(cond);
                let tb = self.new_block();
                let eb = self.new_block();
                let merge = self.new_block();
                self.set_term(Terminator::Branch {
                    cond: c,
                    then_blk: tb,
                    else_blk: eb,
                });
                self.switch_to(tb);
                for s in then_blk {
                    self.stmt(s);
                }
                self.set_term(Terminator::Jump(merge));
                self.switch_to(eb);
                for s in else_blk {
                    self.stmt(s);
                }
                self.set_term(Terminator::Jump(merge));
                self.switch_to(merge);
            }
            TStmt::While { cond, body } => {
                let head = self.new_block();
                let body_blk = self.new_block();
                let exit = self.new_block();
                self.set_term(Terminator::Jump(head));
                self.switch_to(head);
                let c = self.expr(cond);
                self.set_term(Terminator::Branch {
                    cond: c,
                    then_blk: body_blk,
                    else_blk: exit,
                });
                self.switch_to(body_blk);
                self.loops.push((head, exit));
                for s in body {
                    self.stmt(s);
                }
                self.loops.pop();
                self.set_term(Terminator::Jump(head));
                self.switch_to(exit);
            }
            TStmt::Return(v) => {
                let op = v.as_ref().map(|e| self.expr(e));
                self.set_term(Terminator::Return(op));
            }
            TStmt::Break => {
                let (_, exit) = *self.loops.last().expect("checked by typeck");
                self.set_term(Terminator::Jump(exit));
            }
            TStmt::Continue => {
                let (head, _) = *self.loops.last().expect("checked by typeck");
                self.set_term(Terminator::Jump(head));
            }
        }
    }

    fn assign_reg(&mut self, r: Reg, v: Operand) {
        match v {
            Operand::Imm(val) => self.emit(Instr::Const { dst: r, value: val }),
            Operand::Reg(src) if src == r => {}
            Operand::Reg(src) => self.emit(Instr::Bin {
                dst: r,
                op: BinOp::Or,
                a: Operand::Reg(src),
                b: Operand::Imm(0),
                width: Width::W64,
            }),
        }
    }

    fn local_array(&mut self, slot: usize) -> (Operand, Width) {
        let Place::ArrayBase(r) = self.places[slot] else {
            unreachable!("indexing a scalar slot");
        };
        let Type::Array(w, _) = self.func.locals[slot].ty else {
            unreachable!("array slot has array type");
        };
        (Operand::Reg(r), w)
    }

    /// Computes `base + zext(index) * elem_size` as a new register.
    fn element_addr(&mut self, base: Operand, index: &TExpr, elem: Width) -> Operand {
        let idx = self.expr(index);
        let idx64 = self.widen(idx, index.ty.scalar_width());
        let scaled = if elem.bytes() == 1 {
            idx64
        } else {
            let r = self.fresh();
            self.emit(Instr::Bin {
                dst: r,
                op: BinOp::Mul,
                a: idx64,
                b: Operand::Imm(elem.bytes()),
                width: Width::W64,
            });
            Operand::Reg(r)
        };
        let addr = self.fresh();
        self.emit(Instr::Bin {
            dst: addr,
            op: BinOp::Add,
            a: base,
            b: scaled,
            width: Width::W64,
        });
        Operand::Reg(addr)
    }

    /// Zero-extends `v` (known truncated at `from`) to 64 bits. Register
    /// values maintain the invariant of being truncated at their type width,
    /// so this is a no-op move.
    fn widen(&mut self, v: Operand, _from: Width) -> Operand {
        v
    }

    fn expr(&mut self, e: &TExpr) -> Operand {
        match &e.kind {
            TExprKind::Int(v) => Operand::Imm(*v),
            TExprKind::Local(slot) => match self.places[*slot] {
                Place::Scalar(r) => Operand::Reg(r),
                Place::ArrayBase(r) => Operand::Reg(r),
            },
            TExprKind::Global(gid) => {
                let base = self.fresh();
                self.emit(Instr::GlobalAddr {
                    dst: base,
                    global: GlobalId(*gid as u32),
                });
                let w = e.ty.scalar_width();
                let dst = self.fresh();
                self.emit(Instr::Load {
                    dst,
                    addr: base.into(),
                    width: w,
                });
                Operand::Reg(dst)
            }
            TExprKind::IndexGlobal { gid, index } => {
                let w = e.ty.scalar_width();
                let base = self.fresh();
                self.emit(Instr::GlobalAddr {
                    dst: base,
                    global: GlobalId(*gid as u32),
                });
                let addr = self.element_addr(base.into(), index, w);
                let dst = self.fresh();
                self.emit(Instr::Load {
                    dst,
                    addr,
                    width: w,
                });
                Operand::Reg(dst)
            }
            TExprKind::IndexLocal { slot, index } => {
                let (base, w) = self.local_array(*slot);
                let addr = self.element_addr(base, index, w);
                let dst = self.fresh();
                self.emit(Instr::Load {
                    dst,
                    addr,
                    width: w,
                });
                Operand::Reg(dst)
            }
            TExprKind::AddrGlobal(gid) => {
                let dst = self.fresh();
                self.emit(Instr::GlobalAddr {
                    dst,
                    global: GlobalId(*gid as u32),
                });
                Operand::Reg(dst)
            }
            TExprKind::AddrLocal(slot) => {
                let Place::ArrayBase(r) = self.places[*slot] else {
                    unreachable!("&scalar-local is rejected upstream");
                };
                Operand::Reg(r)
            }
            TExprKind::Bin { op, lhs, rhs } => self.bin(*op, lhs, rhs),
            TExprKind::Logic { is_and, lhs, rhs } => self.logic(*is_and, lhs, rhs),
            TExprKind::Un { op, expr } => {
                let a = self.expr(expr);
                let w = expr.ty.scalar_width();
                let uop = match op {
                    AstUnOp::Neg => UnOp::Neg,
                    AstUnOp::BitNot => UnOp::Not,
                    AstUnOp::LNot => UnOp::LNot,
                };
                let dst = self.fresh();
                self.emit(Instr::Un {
                    dst,
                    op: uop,
                    a,
                    width: w,
                });
                Operand::Reg(dst)
            }
            TExprKind::Cast(inner) => {
                let v = self.expr(inner);
                let from = inner.ty.scalar_width();
                let to = e.ty.scalar_width();
                if to >= from {
                    // Values are stored zero-extended; widening is free.
                    v
                } else {
                    let dst = self.fresh();
                    self.emit(Instr::Cast {
                        dst,
                        a: v,
                        from: to,
                    });
                    Operand::Reg(dst)
                }
            }
            TExprKind::Call {
                callee,
                args,
                str_arg,
            } => self.call(callee, args, str_arg.as_deref()),
            TExprKind::Spawn { func, args } => {
                let args: Vec<Operand> = args.iter().map(|a| self.expr(a)).collect();
                let dst = self.fresh();
                self.emit(Instr::Spawn {
                    dst,
                    func: FuncId(*func as u32),
                    args,
                });
                Operand::Reg(dst)
            }
        }
    }

    fn bin(&mut self, op: AstBinOp, lhs: &TExpr, rhs: &TExpr) -> Operand {
        let w = lhs.ty.scalar_width();
        let a = self.expr(lhs);
        let b = self.expr(rhs);
        let dst = self.fresh();
        use AstBinOp::*;
        match op {
            Add | Sub | Mul | Div | Rem | BitAnd | BitOr | BitXor | Shl | Shr => {
                let bop = match op {
                    Add => BinOp::Add,
                    Sub => BinOp::Sub,
                    Mul => BinOp::Mul,
                    Div => BinOp::UDiv,
                    Rem => BinOp::URem,
                    BitAnd => BinOp::And,
                    BitOr => BinOp::Or,
                    BitXor => BinOp::Xor,
                    Shl => BinOp::Shl,
                    Shr => BinOp::LShr,
                    _ => unreachable!(),
                };
                self.emit(Instr::Bin {
                    dst,
                    op: bop,
                    a,
                    b,
                    width: w,
                });
            }
            Lt | Le | Gt | Ge | Eq | Ne => {
                let (pred, a, b) = match op {
                    Lt => (CmpOp::Ult, a, b),
                    Le => (CmpOp::Ule, a, b),
                    Gt => (CmpOp::Ult, b, a),
                    Ge => (CmpOp::Ule, b, a),
                    Eq => (CmpOp::Eq, a, b),
                    Ne => (CmpOp::Ne, a, b),
                    _ => unreachable!(),
                };
                self.emit(Instr::Cmp {
                    dst,
                    pred,
                    a,
                    b,
                    width: w,
                });
            }
            LAnd | LOr => unreachable!("logic ops are TExprKind::Logic"),
        }
        Operand::Reg(dst)
    }

    fn logic(&mut self, is_and: bool, lhs: &TExpr, rhs: &TExpr) -> Operand {
        let result = self.fresh();
        let l = self.expr(lhs);
        let rhs_blk = self.new_block();
        let short_blk = self.new_block();
        let merge = self.new_block();
        let (then_blk, else_blk) = if is_and {
            (rhs_blk, short_blk)
        } else {
            (short_blk, rhs_blk)
        };
        self.set_term(Terminator::Branch {
            cond: l,
            then_blk,
            else_blk,
        });
        self.switch_to(rhs_blk);
        let r = self.expr(rhs);
        self.assign_reg(result, r);
        self.set_term(Terminator::Jump(merge));
        self.switch_to(short_blk);
        self.emit(Instr::Const {
            dst: result,
            value: u64::from(!is_and),
        });
        self.set_term(Terminator::Jump(merge));
        self.switch_to(merge);
        Operand::Reg(result)
    }

    fn call(&mut self, callee: &Callee, args: &[TExpr], str_arg: Option<&str>) -> Operand {
        let arg_ops: Vec<Operand> = args.iter().map(|a| self.expr(a)).collect();
        match callee {
            Callee::User(fi) => {
                let dst = self.fresh();
                self.emit(Instr::Call {
                    dst: Some(dst),
                    func: FuncId(*fi as u32),
                    args: arg_ops,
                });
                Operand::Reg(dst)
            }
            Callee::Builtin(b) => match b {
                Builtin::Input(w) => {
                    let src = match arg_ops[0] {
                        Operand::Imm(v) => v as u32,
                        Operand::Reg(_) => 0, // dynamic sources collapse to stream 0
                    };
                    let dst = self.fresh();
                    self.emit(Instr::Input {
                        dst,
                        source: src,
                        width: *w,
                    });
                    Operand::Reg(dst)
                }
                Builtin::Alloc => {
                    let dst = self.fresh();
                    self.emit(Instr::Alloc {
                        dst,
                        size: arg_ops[0],
                    });
                    Operand::Reg(dst)
                }
                Builtin::Free => {
                    self.emit(Instr::Free { addr: arg_ops[0] });
                    Operand::Imm(0)
                }
                Builtin::Load(w) => {
                    let dst = self.fresh();
                    self.emit(Instr::Load {
                        dst,
                        addr: arg_ops[0],
                        width: *w,
                    });
                    Operand::Reg(dst)
                }
                Builtin::Store(w) => {
                    self.emit(Instr::Store {
                        addr: arg_ops[0],
                        value: arg_ops[1],
                        width: *w,
                    });
                    Operand::Imm(0)
                }
                Builtin::Print => {
                    self.emit(Instr::Print { value: arg_ops[0] });
                    Operand::Imm(0)
                }
                Builtin::PtWrite => {
                    self.emit(Instr::PtWrite { value: arg_ops[0] });
                    Operand::Imm(0)
                }
                Builtin::Clock => {
                    let dst = self.fresh();
                    self.emit(Instr::Clock { dst });
                    Operand::Reg(dst)
                }
                Builtin::Join => {
                    self.emit(Instr::Join { tid: arg_ops[0] });
                    Operand::Imm(0)
                }
                Builtin::Lock => {
                    self.emit(Instr::Lock { lock: arg_ops[0] });
                    Operand::Imm(0)
                }
                Builtin::Unlock => {
                    self.emit(Instr::Unlock { lock: arg_ops[0] });
                    Operand::Imm(0)
                }
                Builtin::Assert => {
                    self.emit(Instr::Assert {
                        cond: arg_ops[0],
                        message: str_arg.unwrap_or("assertion").to_string(),
                    });
                    Operand::Imm(0)
                }
                Builtin::Abort => {
                    self.emit(Instr::Abort {
                        message: str_arg.unwrap_or("abort").to_string(),
                    });
                    Operand::Imm(0)
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::types::check;

    fn lower_src(src: &str) -> Program {
        let toks = lex(src).unwrap();
        lower(&check(&parse(&toks, src).unwrap()).unwrap())
    }

    #[test]
    fn lowers_straight_line() {
        let p = lower_src("fn main() { let x: u32 = 1 + 2; print(x); }");
        let f = p.func(p.entry);
        assert_eq!(f.blocks.len(), 1);
        assert!(matches!(f.blocks[0].term, Some(Terminator::Return(None))));
    }

    #[test]
    fn lowers_if_to_branch() {
        let p =
            lower_src("fn main() { let x: u32 = 3; if x < 4 { print(1); } else { print(2); } }");
        let f = p.func(p.entry);
        assert!(f
            .blocks
            .iter()
            .any(|b| matches!(b.term, Some(Terminator::Branch { .. }))));
        assert_eq!(f.blocks.len(), 4);
    }

    #[test]
    fn lowers_while_with_back_edge() {
        let p = lower_src("fn main() { let i: u32 = 0; while i < 3 { i = i + 1; } }");
        let f = p.func(p.entry);
        // entry -> head -> body -> head, exit
        assert_eq!(f.blocks.len(), 4);
        let head_jumps: usize = f
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Some(Terminator::Jump(BlockId(1)))))
            .count();
        assert_eq!(head_jumps, 2, "entry and body both jump to loop head");
    }

    #[test]
    fn short_circuit_creates_blocks() {
        let p = lower_src("fn main() { let a: u32 = 1; if a < 2 && a > 0 { print(a); } }");
        let f = p.func(p.entry);
        assert!(f.blocks.len() >= 5);
    }

    #[test]
    fn globals_get_addresses() {
        let p = lower_src("global A: [u32; 4];\nglobal b: u8;\nfn main() { b = 1; A[0] = 2; }");
        assert_eq!(p.globals[0].addr, GLOBAL_BASE);
        assert_eq!(p.globals[1].addr, GLOBAL_BASE + 16);
        assert_eq!(p.globals[0].size, 16);
    }

    #[test]
    fn array_index_scales_by_element_size() {
        let p = lower_src("global A: [u32; 8];\nfn main() { let i: u32 = 2; A[i] = 7; }");
        let f = p.func(p.entry);
        let has_mul = f.blocks[0].instrs.iter().any(|i| {
            matches!(
                i,
                Instr::Bin {
                    op: BinOp::Mul,
                    b: Operand::Imm(4),
                    ..
                }
            )
        });
        assert!(has_mul, "index must be scaled by 4:\n{}", p.display());
    }

    #[test]
    fn stack_arrays_allocated_at_entry() {
        let p = lower_src("fn main() { var buf: [u8; 32]; buf[0] = 1; }");
        let f = p.func(p.entry);
        assert!(matches!(
            f.blocks[0].instrs[0],
            Instr::StackAlloc { size: 32, .. }
        ));
    }

    #[test]
    fn call_and_return_lower() {
        let p = lower_src("fn f(a: u32) -> u32 { return a + 1; }\nfn main() { print(f(4)); }");
        let main = p.func(p.entry);
        assert!(main.blocks[0]
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Call { .. })));
        let f = p.func(FuncId(0));
        assert!(matches!(
            f.blocks[0].term,
            Some(Terminator::Return(Some(_)))
        ));
    }

    #[test]
    fn spawn_join_lock_lower() {
        let p = lower_src(
            "fn w(a: u32) { lock(0); unlock(0); }\nfn main() { let t: u64 = spawn w(1); join(t); }",
        );
        let main = p.func(p.entry);
        assert!(main.blocks[0]
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Spawn { .. })));
        assert!(main.blocks[0]
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Join { .. })));
    }

    #[test]
    fn break_continue_lower() {
        let p = lower_src(
            "fn main() { let i: u32 = 0; while true { i = i + 1; if i == 2 { continue; } if i == 5 { break; } } print(i); }",
        );
        assert!(p.func(p.entry).blocks.len() >= 6);
    }

    #[test]
    fn narrowing_cast_emits_trunc() {
        let p = lower_src("fn main() { let x: u64 = 300; let y: u8 = x as u8; print(y); }");
        let f = p.func(p.entry);
        assert!(f.blocks[0].instrs.iter().any(|i| matches!(
            i,
            Instr::Cast {
                from: Width::W8,
                ..
            }
        )));
    }
}
