//! The nondeterministic environment: input streams and the clock.
//!
//! Everything a run consumes from here is exactly what a record/replay
//! system must log and what symbolic execution treats as unknown (the
//! paper's extended POSIX model treats file contents, socket packets, and
//! clock values as symbolic).

use crate::error::RuntimeFault;
use crate::value::Width;
use std::collections::BTreeMap;

/// A single nondeterministic input event, as consumed by a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputEvent {
    /// Which stream produced the bytes.
    pub source: u32,
    /// Offset of the first byte within the stream.
    pub offset: usize,
    /// The bytes consumed (little-endian value order).
    pub bytes: Vec<u8>,
}

/// Input streams plus a virtual clock.
#[derive(Debug, Clone, Default)]
pub struct Env {
    streams: BTreeMap<u32, Stream>,
    clock: u64,
    clock_step: u64,
}

#[derive(Debug, Clone, Default)]
struct Stream {
    data: Vec<u8>,
    pos: usize,
}

impl Env {
    /// An empty environment (no inputs, clock at zero advancing by 1).
    pub fn new() -> Self {
        Env {
            streams: BTreeMap::new(),
            clock: 0,
            clock_step: 1,
        }
    }

    /// Appends `bytes` to input stream `source`.
    pub fn push_input(&mut self, source: u32, bytes: &[u8]) {
        self.streams.entry(source).or_default().data.extend(bytes);
    }

    /// Sets the virtual clock's starting value and per-read increment.
    pub fn set_clock(&mut self, start: u64, step: u64) {
        self.clock = start;
        self.clock_step = step;
    }

    /// Reads `width` bytes from `source` as a little-endian value, also
    /// reporting the event for recording purposes.
    ///
    /// # Errors
    ///
    /// Faults with [`RuntimeFault::InputExhausted`] when the stream runs dry,
    /// modelling a short read treated as fatal by the program.
    pub fn read_input(
        &mut self,
        source: u32,
        width: Width,
    ) -> Result<(u64, InputEvent), RuntimeFault> {
        let stream = self
            .streams
            .get_mut(&source)
            .ok_or(RuntimeFault::InputExhausted { source })?;
        let n = width.bytes() as usize;
        if stream.pos + n > stream.data.len() {
            return Err(RuntimeFault::InputExhausted { source });
        }
        let offset = stream.pos;
        let bytes = stream.data[offset..offset + n].to_vec();
        stream.pos += n;
        let mut buf = [0u8; 8];
        buf[..n].copy_from_slice(&bytes);
        Ok((
            u64::from_le_bytes(buf),
            InputEvent {
                source,
                offset,
                bytes,
            },
        ))
    }

    /// Reads the virtual clock, advancing it.
    pub fn read_clock(&mut self) -> u64 {
        let v = self.clock;
        self.clock = self.clock.wrapping_add(self.clock_step);
        v
    }

    /// Total bytes remaining across all streams.
    pub fn remaining(&self) -> usize {
        self.streams.values().map(|s| s.data.len() - s.pos).sum()
    }

    /// The full contents of stream `source`, consumed or not.
    pub fn stream_data(&self, source: u32) -> Option<&[u8]> {
        self.streams.get(&source).map(|s| s.data.as_slice())
    }

    /// Ids of all streams with any data.
    pub fn sources(&self) -> Vec<u32> {
        self.streams.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_little_endian_and_tracks_offsets() {
        let mut env = Env::new();
        env.push_input(0, &[0x01, 0x02, 0x03, 0x04, 0xff]);
        let (v, ev) = env.read_input(0, Width::W32).unwrap();
        assert_eq!(v, 0x0403_0201);
        assert_eq!(ev.offset, 0);
        let (v2, ev2) = env.read_input(0, Width::W8).unwrap();
        assert_eq!(v2, 0xff);
        assert_eq!(ev2.offset, 4);
        assert_eq!(env.remaining(), 0);
    }

    #[test]
    fn exhaustion_faults() {
        let mut env = Env::new();
        env.push_input(3, &[1]);
        assert!(matches!(
            env.read_input(3, Width::W16),
            Err(RuntimeFault::InputExhausted { source: 3 })
        ));
        assert!(matches!(
            env.read_input(9, Width::W8),
            Err(RuntimeFault::InputExhausted { source: 9 })
        ));
    }

    #[test]
    fn clock_advances() {
        let mut env = Env::new();
        env.set_clock(100, 10);
        assert_eq!(env.read_clock(), 100);
        assert_eq!(env.read_clock(), 110);
    }

    #[test]
    fn multiple_streams_are_independent() {
        let mut env = Env::new();
        env.push_input(0, &[1, 2]);
        env.push_input(1, &[9]);
        assert_eq!(env.read_input(1, Width::W8).unwrap().0, 9);
        assert_eq!(env.read_input(0, Width::W8).unwrap().0, 1);
        assert_eq!(env.sources(), vec![0, 1]);
        assert_eq!(env.stream_data(0), Some(&[1u8, 2][..]));
    }
}
