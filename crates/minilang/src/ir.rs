//! The register-based intermediate representation.
//!
//! Both the concrete interpreter and the symbolic executor run this IR, so
//! a control-flow trace recorded concretely can shepherd symbolic execution
//! instruction-for-instruction — the property the paper gets by mapping x86
//! traces into KLEE's LLVM IR (and loses 8.5% of; our mapping is exact, see
//! DESIGN.md).

use crate::value::{BinOp, CmpOp, UnOp, Width};
use std::fmt;

/// Index of a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct FuncId(pub u32);

/// Index of a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// A virtual register within a function frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

/// Index of a global variable within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

/// Static identity of one IR instruction: the "program counter" used for
/// failure identity, trace following, and `ptwrite` instrumentation sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstrId {
    /// Containing function.
    pub func: FuncId,
    /// Containing block.
    pub block: BlockId,
    /// Index within the block; `usize::MAX` denotes the block terminator.
    pub index: usize,
}

impl InstrId {
    /// The pseudo-index used for a block's terminator.
    pub const TERMINATOR: usize = usize::MAX;
}

impl fmt::Display for InstrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.index == Self::TERMINATOR {
            write!(f, "f{}.b{}.term", self.func.0, self.block.0)
        } else {
            write!(f, "f{}.b{}.i{}", self.func.0, self.block.0, self.index)
        }
    }
}

/// A register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read a virtual register.
    Reg(Reg),
    /// A constant.
    Imm(u64),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "r{}", r.0),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// One IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = imm`
    Const {
        /// Destination register.
        dst: Reg,
        /// Value.
        value: u64,
    },
    /// `dst = a op b` at `width`, wrapping.
    Bin {
        /// Destination register.
        dst: Reg,
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// Operation width.
        width: Width,
    },
    /// `dst = op a` at `width`.
    Un {
        /// Destination register.
        dst: Reg,
        /// Operator.
        op: UnOp,
        /// Operand.
        a: Operand,
        /// Operation width.
        width: Width,
    },
    /// `dst = (a pred b) ? 1 : 0` at `width`.
    Cmp {
        /// Destination register.
        dst: Reg,
        /// Predicate.
        pred: CmpOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// Comparison width.
        width: Width,
    },
    /// `dst = zext(trunc(a, from))` — register re-width.
    Cast {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        a: Operand,
        /// Width truncated to before zero-extension.
        from: Width,
    },
    /// `dst = mem[addr .. addr+width]` little-endian.
    Load {
        /// Destination register.
        dst: Reg,
        /// Byte address.
        addr: Operand,
        /// Access width.
        width: Width,
    },
    /// `mem[addr .. addr+width] = value` little-endian.
    Store {
        /// Byte address.
        addr: Operand,
        /// Stored value (truncated to `width`).
        value: Operand,
        /// Access width.
        width: Width,
    },
    /// `dst = &global`
    GlobalAddr {
        /// Destination register.
        dst: Reg,
        /// Which global.
        global: GlobalId,
    },
    /// `dst = alloca(size)` — frame-local stack memory, freed on return.
    StackAlloc {
        /// Destination register (receives the base address).
        dst: Reg,
        /// Size in bytes.
        size: u64,
    },
    /// `dst = heap_alloc(size)`.
    Alloc {
        /// Destination register (receives the base address).
        dst: Reg,
        /// Size in bytes.
        size: Operand,
    },
    /// `heap_free(addr)`.
    Free {
        /// Allocation base address.
        addr: Operand,
    },
    /// Direct call. Arguments become the callee's first registers.
    Call {
        /// Receives the return value, if the caller uses it.
        dst: Option<Reg>,
        /// Callee.
        func: FuncId,
        /// Argument operands.
        args: Vec<Operand>,
    },
    /// `dst = next `width` bytes of input stream `source``.
    Input {
        /// Destination register.
        dst: Reg,
        /// Input stream id.
        source: u32,
        /// How many bytes to consume.
        width: Width,
    },
    /// `dst = virtual clock` — a nondeterministic time source.
    Clock {
        /// Destination register.
        dst: Reg,
    },
    /// Emit `value` into the trace (the `ptwrite` instruction, §3.3.3).
    PtWrite {
        /// Traced value.
        value: Operand,
    },
    /// Append `value` to the program's observable output.
    Print {
        /// Printed value.
        value: Operand,
    },
    /// Start a thread running `func(args)`; `dst` receives the thread id.
    Spawn {
        /// Receives the new thread id.
        dst: Reg,
        /// Thread entry function.
        func: FuncId,
        /// Argument operands.
        args: Vec<Operand>,
    },
    /// Block until thread `tid` exits.
    Join {
        /// Thread id operand.
        tid: Operand,
    },
    /// Acquire mutex `lock`.
    Lock {
        /// Lock id operand.
        lock: Operand,
    },
    /// Release mutex `lock`.
    Unlock {
        /// Lock id operand.
        lock: Operand,
    },
    /// Fault with [`RuntimeFault::AssertFailed`] if `cond` is zero.
    ///
    /// [`RuntimeFault::AssertFailed`]: crate::error::RuntimeFault::AssertFailed
    Assert {
        /// Condition (nonzero passes).
        cond: Operand,
        /// Failure message.
        message: String,
    },
    /// Unconditional fault with [`RuntimeFault::Abort`].
    ///
    /// [`RuntimeFault::Abort`]: crate::error::RuntimeFault::Abort
    Abort {
        /// Failure message.
        message: String,
    },
}

impl Instr {
    /// The register this instruction defines, if any.
    pub fn dst(&self) -> Option<Reg> {
        match self {
            Instr::Const { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::Cmp { dst, .. }
            | Instr::Cast { dst, .. }
            | Instr::Load { dst, .. }
            | Instr::GlobalAddr { dst, .. }
            | Instr::StackAlloc { dst, .. }
            | Instr::Alloc { dst, .. }
            | Instr::Input { dst, .. }
            | Instr::Clock { dst }
            | Instr::Spawn { dst, .. } => Some(*dst),
            Instr::Call { dst, .. } => *dst,
            Instr::Store { .. }
            | Instr::Free { .. }
            | Instr::PtWrite { .. }
            | Instr::Print { .. }
            | Instr::Join { .. }
            | Instr::Lock { .. }
            | Instr::Unlock { .. }
            | Instr::Assert { .. }
            | Instr::Abort { .. } => None,
        }
    }

    /// Width of the value this instruction defines, where meaningful.
    /// Addresses, clocks, and thread ids are 64-bit; comparison results are
    /// reported at the comparison width.
    pub fn dst_width(&self) -> Option<Width> {
        match self {
            Instr::Bin { width, .. } | Instr::Un { width, .. } | Instr::Cmp { width, .. } => {
                Some(*width)
            }
            Instr::Cast { from, .. } => Some(*from),
            Instr::Load { width, .. } | Instr::Input { width, .. } => Some(*width),
            Instr::Const { .. }
            | Instr::GlobalAddr { .. }
            | Instr::StackAlloc { .. }
            | Instr::Alloc { .. }
            | Instr::Clock { .. }
            | Instr::Spawn { .. }
            | Instr::Call { .. } => Some(Width::W64),
            _ => None,
        }
    }
}

/// How a basic block ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch on `cond != 0`. This is the instruction
    /// whose outcome Intel PT records as a TNT bit.
    Branch {
        /// Condition operand.
        cond: Operand,
        /// Target when nonzero.
        then_blk: BlockId,
        /// Target when zero.
        else_blk: BlockId,
    },
    /// Function return.
    Return(Option<Operand>),
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Straight-line body.
    pub instrs: Vec<Instr>,
    /// Block terminator. `None` only transiently during construction.
    pub term: Option<Terminator>,
}

/// A function: blocks, entry, and frame layout.
#[derive(Debug, Clone)]
pub struct Func {
    /// Function name (for diagnostics and failure reports).
    pub name: String,
    /// Number of parameters; parameters arrive in registers `r0..rN`.
    pub n_params: usize,
    /// Total virtual registers used by the frame.
    pub n_regs: usize,
    /// Basic blocks; entry is block 0.
    pub blocks: Vec<Block>,
}

impl Func {
    /// The block with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }
}

/// A global variable's layout.
#[derive(Debug, Clone)]
pub struct Global {
    /// Name (for diagnostics).
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Element width for array globals; scalar globals use their own width.
    pub elem: Width,
    /// Scalar initial value (arrays are zeroed).
    pub init: u64,
    /// Assigned virtual address (filled in by lowering).
    pub addr: u64,
}

/// A complete IR program.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// All functions; `entry` indexes into this.
    pub funcs: Vec<Func>,
    /// All globals with assigned addresses.
    pub globals: Vec<Global>,
    /// The `main` function.
    pub entry: FuncId,
}

impl Program {
    /// The function with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func(&self, id: FuncId) -> &Func {
        &self.funcs[id.0 as usize]
    }

    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// The instruction at `id`, or `None` for terminators / out-of-range ids.
    pub fn instr(&self, id: InstrId) -> Option<&Instr> {
        self.funcs
            .get(id.func.0 as usize)?
            .blocks
            .get(id.block.0 as usize)?
            .instrs
            .get(id.index)
    }

    /// Total static instruction count (excluding terminators).
    pub fn static_instr_count(&self) -> usize {
        self.funcs
            .iter()
            .flat_map(|f| &f.blocks)
            .map(|b| b.instrs.len())
            .sum()
    }

    /// Renders the program as human-readable IR text.
    pub fn display(&self) -> String {
        let mut out = String::new();
        use std::fmt::Write as _;
        for g in &self.globals {
            let _ = writeln!(
                out,
                "global {} : {} bytes @ {:#x} (elem {}, init {})",
                g.name, g.size, g.addr, g.elem, g.init
            );
        }
        for (fi, f) in self.funcs.iter().enumerate() {
            let _ = writeln!(
                out,
                "fn f{} {} (params {}, regs {}) {{",
                fi, f.name, f.n_params, f.n_regs
            );
            for (bi, b) in f.blocks.iter().enumerate() {
                let _ = writeln!(out, "  b{bi}:");
                for (ii, ins) in b.instrs.iter().enumerate() {
                    let _ = writeln!(out, "    i{ii}: {ins:?}");
                }
                let _ = writeln!(out, "    term: {:?}", b.term);
            }
            let _ = writeln!(out, "}}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instr_dst_extraction() {
        let i = Instr::Bin {
            dst: Reg(3),
            op: BinOp::Add,
            a: Operand::Imm(1),
            b: Operand::Reg(Reg(0)),
            width: Width::W32,
        };
        assert_eq!(i.dst(), Some(Reg(3)));
        assert_eq!(i.dst_width(), Some(Width::W32));
        let s = Instr::Store {
            addr: Operand::Imm(0),
            value: Operand::Imm(0),
            width: Width::W8,
        };
        assert_eq!(s.dst(), None);
        assert_eq!(s.dst_width(), None);
    }

    #[test]
    fn instr_id_display() {
        let id = InstrId {
            func: FuncId(1),
            block: BlockId(2),
            index: 3,
        };
        assert_eq!(id.to_string(), "f1.b2.i3");
        let t = InstrId {
            index: InstrId::TERMINATOR,
            ..id
        };
        assert_eq!(t.to_string(), "f1.b2.term");
    }

    #[test]
    fn program_lookup() {
        let p = Program {
            funcs: vec![Func {
                name: "main".into(),
                n_params: 0,
                n_regs: 1,
                blocks: vec![Block {
                    instrs: vec![Instr::Const {
                        dst: Reg(0),
                        value: 9,
                    }],
                    term: Some(Terminator::Return(None)),
                }],
            }],
            globals: vec![],
            entry: FuncId(0),
        };
        assert_eq!(p.func_by_name("main"), Some(FuncId(0)));
        assert_eq!(p.func_by_name("nope"), None);
        assert_eq!(p.static_instr_count(), 1);
        assert!(p
            .instr(InstrId {
                func: FuncId(0),
                block: BlockId(0),
                index: 0
            })
            .is_some());
        assert!(!p.display().is_empty());
    }
}
