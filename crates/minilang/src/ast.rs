//! Abstract syntax tree produced by the parser.

use crate::span::Span;
use crate::value::Width;

/// A source-level type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Type {
    /// Boolean (stored as one byte when in memory).
    Bool,
    /// Unsigned integer of the given width. Pointers are `u64`.
    Int(Width),
    /// Fixed-size array of scalars; only valid for globals and `var` locals.
    Array(Width, u64),
}

impl Type {
    /// Scalar width of this type when held in a register; arrays decay to
    /// their base address (`u64`).
    pub fn scalar_width(self) -> Width {
        match self {
            Type::Bool => Width::W8,
            Type::Int(w) => w,
            Type::Array(..) => Width::W64,
        }
    }

    /// Size in bytes when stored in memory.
    pub fn size_bytes(self) -> u64 {
        match self {
            Type::Bool => 1,
            Type::Int(w) => w.bytes(),
            Type::Array(w, n) => w.bytes() * n,
        }
    }
}

/// A whole compilation unit.
#[derive(Debug, Clone, Default)]
pub struct Unit {
    /// Global variable declarations, in source order.
    pub globals: Vec<GlobalDecl>,
    /// Function definitions, in source order.
    pub funcs: Vec<FuncDecl>,
}

/// `global NAME: TYPE;` or `global NAME: TYPE = INIT;`
#[derive(Debug, Clone)]
pub struct GlobalDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Optional scalar initializer (arrays are zero-initialized).
    pub init: Option<u64>,
    /// Source location.
    pub span: Span,
}

/// A function definition.
#[derive(Debug, Clone)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Parameters (scalar types only).
    pub params: Vec<Param>,
    /// Return type; `None` for procedures.
    pub ret: Option<Type>,
    /// Body.
    pub body: Block,
    /// Source location of the header.
    pub span: Span,
}

/// A function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared (scalar) type.
    pub ty: Type,
    /// Source location.
    pub span: Span,
}

/// `{ stmt* }`
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `let NAME: TYPE = EXPR;` — scalar local, mutable.
    Let {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Initializer.
        init: Expr,
        /// Source location.
        span: Span,
    },
    /// `var NAME: [T; N];` — stack array local, zero-initialized.
    VarArray {
        /// Variable name.
        name: String,
        /// Element width.
        elem: Width,
        /// Element count.
        len: u64,
        /// Source location.
        span: Span,
    },
    /// `LVALUE = EXPR;`
    Assign {
        /// Assignment target.
        target: LValue,
        /// New value.
        value: Expr,
        /// Source location.
        span: Span,
    },
    /// An expression evaluated for side effects (typically a call).
    Expr(Expr),
    /// `if COND { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Else branch (possibly empty).
        else_blk: Block,
        /// Source location.
        span: Span,
    },
    /// `while COND { .. }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
        /// Source location.
        span: Span,
    },
    /// `return;` or `return EXPR;`
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
        /// Source location.
        span: Span,
    },
    /// `break;`
    Break(Span),
    /// `continue;`
    Continue(Span),
}

/// An assignable location.
#[derive(Debug, Clone)]
pub enum LValue {
    /// A scalar local variable.
    Name(String, Span),
    /// `ARRAY[INDEX]` where `ARRAY` is a global or `var` local array.
    Index {
        /// Array name.
        array: String,
        /// Index expression.
        index: Box<Expr>,
        /// Source location.
        span: Span,
    },
}

/// Binary operators at source level (desugared by lowering).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (short-circuit)
    LAnd,
    /// `||` (short-circuit)
    LOr,
}

/// Unary operators at source level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstUnOp {
    /// `-`
    Neg,
    /// `~`
    BitNot,
    /// `!`
    LNot,
}

/// An expression.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Integer literal.
    Int(u64, Span),
    /// `true` or `false`.
    Bool(bool, Span),
    /// Variable reference.
    Name(String, Span),
    /// `ARRAY[INDEX]` read.
    Index {
        /// Array name.
        array: String,
        /// Index expression.
        index: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// `&NAME` — base address of an array (or address of a scalar global).
    AddrOf(String, Span),
    /// Binary operation.
    Bin {
        /// Operator.
        op: AstBinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: AstUnOp,
        /// Operand.
        expr: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// `EXPR as TYPE`.
    Cast {
        /// Source expression.
        expr: Box<Expr>,
        /// Target type (scalar).
        ty: Type,
        /// Source location.
        span: Span,
    },
    /// Function or builtin call. String-literal arguments are only legal for
    /// `assert`/`abort` and land in `str_arg`.
    Call {
        /// Callee name.
        callee: String,
        /// Value arguments.
        args: Vec<Expr>,
        /// Trailing message literal for `assert`/`abort`.
        str_arg: Option<String>,
        /// Source location.
        span: Span,
    },
    /// `spawn f(args)` — starts a thread, evaluates to its thread id (u64).
    Spawn {
        /// Spawned function name.
        callee: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source location.
        span: Span,
    },
}

impl Expr {
    /// Source location of this expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s) | Expr::Bool(_, s) | Expr::Name(_, s) | Expr::AddrOf(_, s) => *s,
            Expr::Index { span, .. }
            | Expr::Bin { span, .. }
            | Expr::Un { span, .. }
            | Expr::Cast { span, .. }
            | Expr::Call { span, .. }
            | Expr::Spawn { span, .. } => *span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_sizes() {
        assert_eq!(Type::Bool.size_bytes(), 1);
        assert_eq!(Type::Int(Width::W32).size_bytes(), 4);
        assert_eq!(Type::Array(Width::W32, 256).size_bytes(), 1024);
        assert_eq!(Type::Array(Width::W8, 3).scalar_width(), Width::W64);
    }

    #[test]
    fn expr_spans_propagate() {
        let s = Span::new(5, 9, 2);
        assert_eq!(Expr::Int(1, s).span(), s);
        let e = Expr::Un {
            op: AstUnOp::Neg,
            expr: Box::new(Expr::Int(1, Span::default())),
            span: s,
        };
        assert_eq!(e.span(), s);
    }
}
