//! The concrete interpreter: runs IR programs with cooperative threads,
//! reporting control-flow and data events to a [`TraceSink`].
//!
//! Scheduling is deterministic given a [`SchedConfig`]: threads run
//! round-robin in quanta whose lengths are derived from a seeded xorshift,
//! so concurrency bugs manifest (or not) reproducibly per seed — the
//! substrate for the paper's coarse-interleaving discussion (§3.4).

use crate::env::Env;
use crate::error::{Failure, RuntimeFault};
use crate::ir::*;
use crate::mem::Memory;
use crate::trace::{NullSink, TraceSink};
use std::collections::{HashMap, VecDeque};

/// Scheduler parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Nominal instructions per scheduling quantum.
    pub quantum: u64,
    /// Seed for per-quantum jitter; different seeds explore different
    /// coarse interleavings.
    pub seed: u64,
    /// Total instruction budget before the run is declared a hang.
    pub max_instrs: u64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            quantum: 1_000,
            seed: 1,
            max_instrs: 200_000_000,
        }
    }
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// `main` returned (and all spawned threads were joined or finished).
    Completed,
    /// The program faulted.
    Failure(Failure),
}

/// Everything observable about one finished run.
#[derive(Debug)]
pub struct RunReport<S> {
    /// Completion or failure.
    pub outcome: RunOutcome,
    /// Values printed via `print`.
    pub output: Vec<u64>,
    /// Dynamic instructions executed (terminators included).
    pub instr_count: u64,
    /// Final memory image (for core-dump-style analyses).
    pub mem: Memory,
    /// The trace sink, with whatever it captured.
    pub sink: S,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    BlockedLock(u64),
    BlockedJoin(u64),
    Done,
}

#[derive(Debug)]
struct Frame {
    func: FuncId,
    block: BlockId,
    ip: usize,
    regs: Vec<u64>,
    ret_dst: Option<Reg>,
    stack_mark: u64,
}

#[derive(Debug)]
struct Thread {
    tid: u64,
    frames: Vec<Frame>,
    state: ThreadState,
}

/// An IR interpreter with a pluggable trace sink.
#[derive(Debug)]
pub struct Machine<'p, S = NullSink> {
    program: &'p Program,
    env: Env,
    mem: Memory,
    threads: Vec<Thread>,
    run_queue: VecDeque<usize>,
    lock_owner: HashMap<u64, u64>,
    icount: u64,
    output: Vec<u64>,
    next_tid: u64,
    sched: SchedConfig,
    rng: u64,
    sink: S,
}

impl<'p> Machine<'p, NullSink> {
    /// A machine running `program` against `env` with no monitoring.
    pub fn new(program: &'p Program, env: Env) -> Self {
        Machine::with_sink(program, env, NullSink)
    }
}

impl<'p, S: TraceSink> Machine<'p, S> {
    /// A machine that reports events to `sink`.
    pub fn with_sink(program: &'p Program, env: Env, sink: S) -> Self {
        let mem = Memory::new(program);
        let main = Thread {
            tid: 0,
            frames: vec![Frame {
                func: program.entry,
                block: BlockId(0),
                ip: 0,
                regs: vec![0; program.func(program.entry).n_regs],
                ret_dst: None,
                stack_mark: mem.stack_watermark(0),
            }],
            state: ThreadState::Runnable,
        };
        Machine {
            program,
            env,
            mem,
            threads: vec![main],
            run_queue: VecDeque::from([0]),
            lock_owner: HashMap::new(),
            icount: 0,
            output: Vec::new(),
            next_tid: 1,
            sched: SchedConfig::default(),
            rng: SchedConfig::default().seed | 1,
            sink,
        }
    }

    /// Overrides the scheduler configuration.
    pub fn with_sched(mut self, sched: SchedConfig) -> Self {
        self.sched = sched;
        self.rng = sched.seed | 1;
        self
    }

    fn next_quantum(&mut self) -> u64 {
        // xorshift64* jitter in [quantum/2, 3*quantum/2).
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let q = self.sched.quantum.max(2);
        q / 2 + (self.rng % q)
    }

    /// Runs to completion or failure, consuming the machine.
    pub fn run(mut self) -> RunReport<S> {
        let outcome = self.run_loop();
        RunReport {
            outcome,
            output: self.output,
            instr_count: self.icount,
            mem: self.mem,
            sink: self.sink,
        }
    }

    fn run_loop(&mut self) -> RunOutcome {
        loop {
            let Some(t) = self.run_queue.pop_front() else {
                // Nothing runnable. Either everything finished or we have a
                // deadlock among blocked threads.
                if let Some(blocked) = self.threads.iter().position(|t| {
                    matches!(
                        t.state,
                        ThreadState::BlockedLock(_) | ThreadState::BlockedJoin(_)
                    )
                }) {
                    return RunOutcome::Failure(self.failure_at(blocked, RuntimeFault::Deadlock));
                }
                return RunOutcome::Completed;
            };
            if self.threads[t].state != ThreadState::Runnable {
                continue;
            }
            let tid = self.threads[t].tid;
            self.sink.thread_resume(tid, self.icount);
            let quantum = self.next_quantum();
            let deadline = self.icount + quantum;
            while self.icount < deadline {
                if self.icount >= self.sched.max_instrs {
                    return RunOutcome::Failure(self.failure_at(t, RuntimeFault::Hang));
                }
                match self.step(t) {
                    StepResult::Continue => {}
                    StepResult::Blocked => break,
                    StepResult::ThreadDone => break,
                    StepResult::Fault(f) => {
                        return RunOutcome::Failure(self.failure_at(t, f));
                    }
                }
            }
            if self.threads[t].state == ThreadState::Runnable {
                self.run_queue.push_back(t);
            }
        }
    }

    fn failure_at(&self, thread_index: usize, fault: RuntimeFault) -> Failure {
        let th = &self.threads[thread_index];
        let at = th
            .frames
            .last()
            .map(|f| {
                let blk = self.program.func(f.func).block(f.block);
                let index = if f.ip < blk.instrs.len() {
                    f.ip
                } else {
                    InstrId::TERMINATOR
                };
                InstrId {
                    func: f.func,
                    block: f.block,
                    index,
                }
            })
            .unwrap_or(InstrId {
                func: self.program.entry,
                block: BlockId(0),
                index: 0,
            });
        Failure {
            fault,
            at,
            call_stack: th.frames.iter().map(|f| f.func).collect(),
            tid: th.tid,
        }
    }

    fn reg(&self, t: usize, r: Reg) -> u64 {
        self.threads[t].frames.last().expect("live frame").regs[r.0 as usize]
    }

    fn set_reg(&mut self, t: usize, r: Reg, v: u64) {
        self.threads[t].frames.last_mut().expect("live frame").regs[r.0 as usize] = v;
    }

    fn operand(&self, t: usize, op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => self.reg(t, r),
            Operand::Imm(v) => v,
        }
    }

    fn step(&mut self, t: usize) -> StepResult {
        self.icount += 1;
        let (func, block, ip) = {
            let f = self.threads[t].frames.last().expect("live frame");
            (f.func, f.block, f.ip)
        };
        let blk = self.program.func(func).block(block);
        if ip >= blk.instrs.len() {
            return self.terminator(t, func, block);
        }
        let instr = blk.instrs[ip].clone();
        match self.exec_instr(t, &instr) {
            Ok(flow) => {
                if matches!(flow, InstrFlow::Advance) {
                    self.threads[t].frames.last_mut().expect("live frame").ip += 1;
                }
                match flow {
                    InstrFlow::Advance | InstrFlow::Redirected => StepResult::Continue,
                    InstrFlow::Blocked => StepResult::Blocked,
                }
            }
            Err(f) => StepResult::Fault(f),
        }
    }

    fn terminator(&mut self, t: usize, func: FuncId, block: BlockId) -> StepResult {
        let term = self
            .program
            .func(func)
            .block(block)
            .term
            .clone()
            .expect("lowering terminates every block");
        match term {
            Terminator::Jump(b) => {
                let f = self.threads[t].frames.last_mut().expect("live frame");
                f.block = b;
                f.ip = 0;
                StepResult::Continue
            }
            Terminator::Branch {
                cond,
                then_blk,
                else_blk,
            } => {
                let taken = self.operand(t, cond) != 0;
                self.sink.cond_branch(taken);
                let f = self.threads[t].frames.last_mut().expect("live frame");
                f.block = if taken { then_blk } else { else_blk };
                f.ip = 0;
                StepResult::Continue
            }
            Terminator::Return(v) => {
                let value = v.map(|op| self.operand(t, op)).unwrap_or(0);
                self.sink.ret();
                self.sink.ret_value(func, value);
                let tid = self.threads[t].tid;
                let frame = self.threads[t].frames.pop().expect("live frame");
                self.mem.stack_restore(tid, frame.stack_mark);
                if let Some(caller) = self.threads[t].frames.last_mut() {
                    if let Some(dst) = frame.ret_dst {
                        caller.regs[dst.0 as usize] = value;
                    }
                    caller.ip += 1; // move past the Call instruction
                    StepResult::Continue
                } else {
                    self.thread_done(t);
                    StepResult::ThreadDone
                }
            }
        }
    }

    fn thread_done(&mut self, t: usize) {
        self.threads[t].state = ThreadState::Done;
        let tid = self.threads[t].tid;
        // Wake joiners.
        for (i, th) in self.threads.iter_mut().enumerate() {
            if th.state == ThreadState::BlockedJoin(tid) {
                th.state = ThreadState::Runnable;
                self.run_queue.push_back(i);
            }
        }
    }

    fn exec_instr(&mut self, t: usize, instr: &Instr) -> Result<InstrFlow, RuntimeFault> {
        match instr {
            Instr::Const { dst, value } => {
                self.set_reg(t, *dst, *value);
            }
            Instr::Bin {
                dst,
                op,
                a,
                b,
                width,
            } => {
                let av = self.operand(t, *a);
                let bv = self.operand(t, *b);
                let r = op.eval(*width, av, bv).ok_or(RuntimeFault::DivByZero)?;
                self.set_reg(t, *dst, r);
            }
            Instr::Un { dst, op, a, width } => {
                let av = self.operand(t, *a);
                self.set_reg(t, *dst, op.eval(*width, av));
            }
            Instr::Cmp {
                dst,
                pred,
                a,
                b,
                width,
            } => {
                let av = self.operand(t, *a);
                let bv = self.operand(t, *b);
                self.set_reg(t, *dst, u64::from(pred.eval(*width, av, bv)));
            }
            Instr::Cast { dst, a, from } => {
                let av = self.operand(t, *a);
                self.set_reg(t, *dst, from.trunc(av));
            }
            Instr::Load { dst, addr, width } => {
                let a = self.operand(t, *addr);
                let v = self.mem.load(a, *width)?;
                self.set_reg(t, *dst, v);
            }
            Instr::Store { addr, value, width } => {
                let a = self.operand(t, *addr);
                let v = self.operand(t, *value);
                self.mem.store(a, *width, v)?;
            }
            Instr::GlobalAddr { dst, global } => {
                let g = &self.program.globals[global.0 as usize];
                self.set_reg(t, *dst, g.addr);
            }
            Instr::StackAlloc { dst, size } => {
                let tid = self.threads[t].tid;
                let a = self.mem.stack_alloc(tid, *size);
                self.set_reg(t, *dst, a);
            }
            Instr::Alloc { dst, size } => {
                let n = self.operand(t, *size);
                let a = self.mem.heap_alloc(n);
                self.set_reg(t, *dst, a);
            }
            Instr::Free { addr } => {
                let a = self.operand(t, *addr);
                self.mem.heap_free(a)?;
            }
            Instr::Call { dst, func, args } => {
                let callee = self.program.func(*func);
                let mut regs = vec![0u64; callee.n_regs];
                for (i, a) in args.iter().enumerate() {
                    regs[i] = self.operand(t, *a);
                }
                self.sink.call(*func);
                self.sink.call_args(*func, &regs[..callee.n_params]);
                let tid = self.threads[t].tid;
                let mark = self.mem.stack_watermark(tid);
                self.threads[t].frames.push(Frame {
                    func: *func,
                    block: BlockId(0),
                    ip: 0,
                    regs,
                    ret_dst: *dst,
                    stack_mark: mark,
                });
                return Ok(InstrFlow::Redirected);
            }
            Instr::Input { dst, source, width } => {
                let (v, event) = self.env.read_input(*source, *width)?;
                self.sink.input(&event);
                self.set_reg(t, *dst, v);
            }
            Instr::Clock { dst } => {
                let v = self.env.read_clock();
                self.sink.clock_read(v);
                self.set_reg(t, *dst, v);
            }
            Instr::PtWrite { value } => {
                let v = self.operand(t, *value);
                self.sink.ptwrite(v);
            }
            Instr::Print { value } => {
                let v = self.operand(t, *value);
                self.output.push(v);
            }
            Instr::Spawn { dst, func, args } => {
                let callee = self.program.func(*func);
                let mut regs = vec![0u64; callee.n_regs];
                for (i, a) in args.iter().enumerate() {
                    regs[i] = self.operand(t, *a);
                }
                let tid = self.next_tid;
                self.next_tid += 1;
                let mark = self.mem.stack_watermark(tid);
                self.threads.push(Thread {
                    tid,
                    frames: vec![Frame {
                        func: *func,
                        block: BlockId(0),
                        ip: 0,
                        regs,
                        ret_dst: None,
                        stack_mark: mark,
                    }],
                    state: ThreadState::Runnable,
                });
                let idx = self.threads.len() - 1;
                self.run_queue.push_back(idx);
                self.set_reg(t, *dst, tid);
            }
            Instr::Join { tid } => {
                let target = self.operand(t, *tid);
                if target >= self.next_tid {
                    return Err(RuntimeFault::BadJoin { tid: target });
                }
                let done = self
                    .threads
                    .iter()
                    .any(|th| th.tid == target && th.state == ThreadState::Done);
                if !done {
                    self.threads[t].state = ThreadState::BlockedJoin(target);
                    // Re-execute Join when woken: do not advance ip; the wake
                    // path marks the thread runnable and the join re-checks.
                    self.threads[t].frames.last_mut().expect("live frame").ip += 1;
                    return Ok(InstrFlow::Blocked);
                }
            }
            Instr::Lock { lock } => {
                let id = self.operand(t, *lock);
                let tid = self.threads[t].tid;
                match self.lock_owner.get(&id) {
                    None => {
                        self.lock_owner.insert(id, tid);
                    }
                    Some(_) => {
                        self.threads[t].state = ThreadState::BlockedLock(id);
                        // ip is *not* advanced: the lock is re-attempted when
                        // the thread is woken by an unlock.
                        return Ok(InstrFlow::Blocked);
                    }
                }
            }
            Instr::Unlock { lock } => {
                let id = self.operand(t, *lock);
                self.lock_owner.remove(&id);
                // Wake all waiters; they re-contend for the lock.
                for (i, th) in self.threads.iter_mut().enumerate() {
                    if th.state == ThreadState::BlockedLock(id) {
                        th.state = ThreadState::Runnable;
                        self.run_queue.push_back(i);
                    }
                }
            }
            Instr::Assert { cond, message } => {
                if self.operand(t, *cond) == 0 {
                    return Err(RuntimeFault::AssertFailed {
                        message: message.clone(),
                    });
                }
            }
            Instr::Abort { message } => {
                return Err(RuntimeFault::Abort {
                    message: message.clone(),
                });
            }
        }
        Ok(InstrFlow::Advance)
    }
}

enum InstrFlow {
    /// Instruction finished; advance the instruction pointer.
    Advance,
    /// Control transferred (call pushed a frame); do not advance.
    Redirected,
    /// Thread blocked; the scheduler takes over.
    Blocked,
}

enum StepResult {
    Continue,
    Blocked,
    ThreadDone,
    Fault(RuntimeFault),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use crate::error::FailureKind;
    use crate::trace::VecSink;

    fn run_src(src: &str, inputs: &[(u32, Vec<u8>)]) -> RunReport<NullSink> {
        let p = compile(src).unwrap();
        let mut env = Env::new();
        for (s, b) in inputs {
            env.push_input(*s, b);
        }
        Machine::new(&p, env).run()
    }

    #[test]
    fn arithmetic_and_print() {
        let r = run_src("fn main() { let x: u32 = 6 * 7; print(x); }", &[]);
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert_eq!(r.output, vec![42]);
    }

    #[test]
    fn loops_and_calls() {
        let r = run_src(
            r#"
            fn fib(n: u32) -> u32 {
                if n < 2 { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            fn main() { print(fib(10)); }
            "#,
            &[],
        );
        assert_eq!(r.output, vec![55]);
    }

    #[test]
    fn globals_and_arrays() {
        let r = run_src(
            r#"
            global V: [u32; 8];
            global sum: u32 = 5;
            fn main() {
                for i: u32 = 0; i < 8; i = i + 1 { V[i] = i * i; }
                for i: u32 = 0; i < 8; i = i + 1 { sum = sum + V[i]; }
                print(sum);
            }
            "#,
            &[],
        );
        assert_eq!(r.output, vec![145]); // 5 + sum of squares 0..7 (140)
    }

    #[test]
    fn inputs_feed_execution() {
        let r = run_src(
            "fn main() { let a: u32 = input_u32(0); let b: u32 = input_u32(0); print(a + b); }",
            &[(0, [3u32.to_le_bytes(), 4u32.to_le_bytes()].concat())],
        );
        assert_eq!(r.output, vec![7]);
    }

    #[test]
    fn abort_fails_with_stack() {
        let r = run_src(
            "fn inner() { abort(\"bad\"); }\nfn outer() { inner(); }\nfn main() { outer(); }",
            &[],
        );
        let RunOutcome::Failure(f) = r.outcome else {
            panic!("expected failure")
        };
        assert_eq!(f.fault.kind(), FailureKind::Abort);
        assert_eq!(f.call_stack.len(), 3);
    }

    #[test]
    fn null_deref_detected() {
        let r = run_src("fn main() { let v: u32 = load32(0); print(v); }", &[]);
        let RunOutcome::Failure(f) = r.outcome else {
            panic!()
        };
        assert_eq!(f.fault.kind(), FailureKind::NullDeref);
    }

    #[test]
    fn use_after_free_detected() {
        let r = run_src(
            "fn main() { let p: u64 = alloc(16); free(p); let v: u8 = load8(p); print(v); }",
            &[],
        );
        let RunOutcome::Failure(f) = r.outcome else {
            panic!()
        };
        assert!(matches!(f.fault, RuntimeFault::UseAfterFree { .. }));
    }

    #[test]
    fn stack_overrun_is_latent() {
        // Writing past buf corrupts sentinel in the same frame; no fault at
        // the overflow itself, but the corruption is visible.
        let r = run_src(
            r#"
            fn main() {
                var buf: [u8; 16];
                var sentinel: [u8; 16];
                buf[20] = 7;
                print(sentinel[4]);
            }
            "#,
            &[],
        );
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert_eq!(r.output, vec![7]);
    }

    #[test]
    fn branch_trace_is_recorded() {
        let p = compile(
            "fn main() { let x: u32 = input_u32(0); if x < 10 { print(1); } else { print(2); } }",
        )
        .unwrap();
        let mut env = Env::new();
        env.push_input(0, &5u32.to_le_bytes());
        let r = Machine::with_sink(&p, env, VecSink::new()).run();
        assert_eq!(r.sink.branches(), vec![true]);
        assert_eq!(r.output, vec![1]);
    }

    #[test]
    fn ptwrite_reaches_sink() {
        let p = compile("fn main() { let x: u32 = 3; ptwrite(x + 1); }").unwrap();
        let r = Machine::with_sink(&p, Env::new(), VecSink::new()).run();
        assert_eq!(r.sink.ptwrites(), vec![4]);
    }

    #[test]
    fn threads_join_and_share_memory() {
        let r = run_src(
            r#"
            global counter: u32;
            fn worker(n: u32) {
                for i: u32 = 0; i < n; i = i + 1 {
                    lock(1);
                    counter = counter + 1;
                    unlock(1);
                }
            }
            fn main() {
                let t1: u64 = spawn worker(100);
                let t2: u64 = spawn worker(100);
                join(t1);
                join(t2);
                print(counter);
            }
            "#,
            &[],
        );
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert_eq!(r.output, vec![200]);
    }

    #[test]
    fn unsynchronized_race_can_lose_updates() {
        let src = r#"
            global counter: u32;
            fn worker(n: u32) {
                for i: u32 = 0; i < n; i = i + 1 {
                    let c: u32 = counter;
                    counter = c + 1;
                }
            }
            fn main() {
                let t1: u64 = spawn worker(2000);
                let t2: u64 = spawn worker(2000);
                join(t1);
                join(t2);
                print(counter);
            }
        "#;
        let p = compile(src).unwrap();
        let lost = (0..8).any(|seed| {
            let r = Machine::new(&p, Env::new())
                .with_sched(SchedConfig {
                    quantum: 37,
                    seed,
                    max_instrs: 10_000_000,
                })
                .run();
            r.output[0] < 4000
        });
        assert!(lost, "some seed should lose an update");
    }

    #[test]
    fn deadlock_detected() {
        let r = run_src(
            r#"
            fn a() { lock(1); lock(2); unlock(2); unlock(1); }
            fn b() { lock(2); lock(1); unlock(1); unlock(2); }
            fn main() {
                let t1: u64 = spawn a();
                let t2: u64 = spawn b();
                join(t1);
                join(t2);
            }
            "#,
            &[],
        );
        // With default quantum the two critical sections may or may not
        // interleave; accept either a deadlock or completion, but never a
        // wrong answer.
        match r.outcome {
            RunOutcome::Completed => {}
            RunOutcome::Failure(f) => assert!(matches!(f.fault, RuntimeFault::Deadlock)),
        }
    }

    #[test]
    fn hang_budget_trips() {
        let p = compile("fn main() { let i: u32 = 0; while true { i = i + 1; } }").unwrap();
        let r = Machine::new(&p, Env::new())
            .with_sched(SchedConfig {
                quantum: 100,
                seed: 1,
                max_instrs: 10_000,
            })
            .run();
        let RunOutcome::Failure(f) = r.outcome else {
            panic!()
        };
        assert!(matches!(f.fault, RuntimeFault::Hang));
    }

    #[test]
    fn input_exhaustion_faults() {
        let r = run_src("fn main() { let a: u32 = input_u32(0); print(a); }", &[]);
        let RunOutcome::Failure(f) = r.outcome else {
            panic!()
        };
        assert!(matches!(f.fault, RuntimeFault::InputExhausted { .. }));
    }

    #[test]
    fn clock_builtin_reads_env_clock() {
        let p = compile("fn main() { print(clock()); print(clock()); }").unwrap();
        let mut env = Env::new();
        env.set_clock(100, 5);
        let r = Machine::new(&p, env).run();
        assert_eq!(r.output, vec![100, 105]);
    }

    #[test]
    fn nested_calls_restore_stack_frames() {
        let r = run_src(
            r#"
            fn leaf(x: u32) -> u32 {
                var buf: [u32; 4];
                buf[0] = x;
                buf[1] = x * 2;
                return buf[0] + buf[1];
            }
            fn mid(x: u32) -> u32 {
                var tmp: [u32; 2];
                tmp[0] = leaf(x);
                tmp[1] = leaf(x + 1);
                return tmp[0] + tmp[1];
            }
            fn main() { print(mid(10)); }
            "#,
            &[],
        );
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert_eq!(r.output, vec![30 + 33]);
    }

    #[test]
    fn instrumented_ptwrite_order_follows_execution() {
        let p = compile(
            r#"
            fn main() {
                for i: u32 = 0; i < 3; i = i + 1 {
                    ptwrite(i * 10);
                }
            }
            "#,
        )
        .unwrap();
        let r = Machine::with_sink(&p, Env::new(), VecSink::new()).run();
        assert_eq!(r.sink.ptwrites(), vec![0, 10, 20]);
    }

    #[test]
    fn identical_runs_are_deterministic() {
        let src = r#"
            global V: [u32; 32];
            fn main() {
                for i: u32 = 0; i < 32; i = i + 1 { V[i] = i * 3; }
                let x: u32 = input_u32(0);
                print(V[x % 32]);
                print(clock());
            }
        "#;
        let p = compile(src).unwrap();
        let mk_env = || {
            let mut e = Env::new();
            e.push_input(0, &9u32.to_le_bytes());
            e
        };
        let r1 = Machine::with_sink(&p, mk_env(), VecSink::new()).run();
        let r2 = Machine::with_sink(&p, mk_env(), VecSink::new()).run();
        assert_eq!(r1.output, r2.output);
        assert_eq!(r1.sink.events, r2.sink.events);
        assert_eq!(r1.instr_count, r2.instr_count);
    }
}
