//! Compile-time and run-time error types.

use crate::ir::{FuncId, InstrId};
use crate::span::Span;
use std::fmt;

/// An error produced while compiling source text to IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Which compiler stage rejected the input.
    pub stage: Stage,
    /// Human-readable description.
    pub message: String,
    /// Location of the offending construct.
    pub span: Span,
}

/// Compiler stage that produced a [`CompileError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Tokenization.
    Lex,
    /// Parsing.
    Parse,
    /// Type checking.
    Type,
}

impl CompileError {
    /// Creates an error for `stage` at `span`.
    pub fn new(stage: Stage, message: impl Into<String>, span: Span) -> Self {
        CompileError {
            stage,
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stage = match self.stage {
            Stage::Lex => "lex",
            Stage::Parse => "parse",
            Stage::Type => "type",
        };
        write!(f, "{} error at {}: {}", stage, self.span, self.message)
    }
}

impl std::error::Error for CompileError {}

/// A memory or execution fault raised by the concrete interpreter.
///
/// Faults are how "crashes" happen: a latent bug corrupts state and the
/// corruption later trips one of these, mirroring how the paper's production
/// failures are fail-stop events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeFault {
    /// Load or store through an address in the guard page around zero.
    NullDeref { addr: u64 },
    /// Load or store to an address no segment maps.
    Unmapped { addr: u64 },
    /// Access to a heap object after `free`.
    UseAfterFree { addr: u64 },
    /// `free` of an address that is not a live allocation base.
    InvalidFree { addr: u64 },
    /// Access past the end of a checked object.
    OutOfBounds { addr: u64, base: u64, size: u64 },
    /// Explicit `abort(msg)`.
    Abort { message: String },
    /// `assert(cond, msg)` with a false condition.
    AssertFailed { message: String },
    /// Division or remainder by zero.
    DivByZero,
    /// An `input_*` call on an exhausted stream.
    InputExhausted { source: u32 },
    /// `join` on an unknown thread id.
    BadJoin { tid: u64 },
    /// Execution exceeded the machine's instruction budget (hang detector).
    Hang,
    /// Deadlock: every runnable thread is blocked on a lock or join.
    Deadlock,
}

impl fmt::Display for RuntimeFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeFault::NullDeref { addr } => write!(f, "null pointer dereference at {addr:#x}"),
            RuntimeFault::Unmapped { addr } => write!(f, "unmapped access at {addr:#x}"),
            RuntimeFault::UseAfterFree { addr } => write!(f, "use-after-free at {addr:#x}"),
            RuntimeFault::InvalidFree { addr } => write!(f, "invalid free of {addr:#x}"),
            RuntimeFault::OutOfBounds { addr, base, size } => {
                write!(
                    f,
                    "out-of-bounds access at {addr:#x} (object {base:#x}+{size})"
                )
            }
            RuntimeFault::Abort { message } => write!(f, "abort: {message}"),
            RuntimeFault::AssertFailed { message } => write!(f, "assertion failed: {message}"),
            RuntimeFault::DivByZero => write!(f, "division by zero"),
            RuntimeFault::InputExhausted { source } => {
                write!(f, "input source {source} exhausted")
            }
            RuntimeFault::BadJoin { tid } => write!(f, "join on unknown thread {tid}"),
            RuntimeFault::Hang => write!(f, "instruction budget exceeded (hang)"),
            RuntimeFault::Deadlock => write!(f, "deadlock"),
        }
    }
}

impl std::error::Error for RuntimeFault {}

/// The broad class of a failure, mirroring Table 1's "Bug Type" column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// Null pointer dereference.
    NullDeref,
    /// Memory-safety fault other than null deref (OOB, unmapped, UAF).
    MemoryCorruption,
    /// Explicit abort.
    Abort,
    /// Developer assertion.
    Assertion,
    /// Arithmetic fault.
    Arithmetic,
    /// Hang or deadlock.
    Liveness,
    /// Environment misuse (exhausted input, bad join).
    Environment,
}

impl RuntimeFault {
    /// Classifies this fault into a [`FailureKind`].
    pub fn kind(&self) -> FailureKind {
        match self {
            RuntimeFault::NullDeref { .. } => FailureKind::NullDeref,
            RuntimeFault::Unmapped { .. }
            | RuntimeFault::UseAfterFree { .. }
            | RuntimeFault::InvalidFree { .. }
            | RuntimeFault::OutOfBounds { .. } => FailureKind::MemoryCorruption,
            RuntimeFault::Abort { .. } => FailureKind::Abort,
            RuntimeFault::AssertFailed { .. } => FailureKind::Assertion,
            RuntimeFault::DivByZero => FailureKind::Arithmetic,
            RuntimeFault::InputExhausted { .. } | RuntimeFault::BadJoin { .. } => {
                FailureKind::Environment
            }
            RuntimeFault::Hang | RuntimeFault::Deadlock => FailureKind::Liveness,
        }
    }
}

/// The identity of a production failure.
///
/// ER's analysis engine "detects the reoccurrence of a failure based on
/// matching the program counter and the call stack where the failure occurs"
/// (paper §4); this struct is exactly that identity plus the fault payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// The fault that stopped the program.
    pub fault: RuntimeFault,
    /// Instruction at which the fault was raised.
    pub at: InstrId,
    /// Call stack (outermost first) at the fault, as function ids.
    pub call_stack: Vec<FuncId>,
    /// Thread that faulted.
    pub tid: u64,
}

impl Failure {
    /// Two failures reoccur as "the same failure" when the faulting program
    /// counter, call stack, and fault class all match.
    pub fn same_failure(&self, other: &Failure) -> bool {
        self.at == other.at
            && self.call_stack == other.call_stack
            && self.fault.kind() == other.fault.kind()
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {:?} on thread {}", self.fault, self.at, self.tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BlockId, FuncId, InstrId};

    fn at(i: usize) -> InstrId {
        InstrId {
            func: FuncId(0),
            block: BlockId(0),
            index: i,
        }
    }

    #[test]
    fn failure_identity_matches_pc_and_stack() {
        let a = Failure {
            fault: RuntimeFault::NullDeref { addr: 0 },
            at: at(3),
            call_stack: vec![FuncId(0), FuncId(2)],
            tid: 0,
        };
        let mut b = a.clone();
        // Different fault payload, same class and location: same failure.
        b.fault = RuntimeFault::NullDeref { addr: 8 };
        assert!(a.same_failure(&b));
        b.at = at(4);
        assert!(!a.same_failure(&b));
    }

    #[test]
    fn fault_kinds_classify() {
        assert_eq!(RuntimeFault::DivByZero.kind(), FailureKind::Arithmetic);
        assert_eq!(
            RuntimeFault::UseAfterFree { addr: 1 }.kind(),
            FailureKind::MemoryCorruption
        );
        assert_eq!(RuntimeFault::Deadlock.kind(), FailureKind::Liveness);
    }

    #[test]
    fn compile_error_display() {
        let e = CompileError::new(Stage::Parse, "expected `)`", Span::new(0, 1, 3));
        assert_eq!(e.to_string(), "parse error at line 3: expected `)`");
    }
}
