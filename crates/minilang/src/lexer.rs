//! Tokenizer for the mini systems language.

use crate::error::{CompileError, Stage};
use crate::span::Span;

/// A lexical token kind. Payload-carrying kinds index into the source via
/// the token's [`Span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword candidate.
    Ident,
    /// Integer literal (decimal or `0x` hex).
    Int,
    /// Double-quoted string literal.
    Str,
    // Keywords.
    /// `fn`
    Fn,
    /// `let`
    Let,
    /// `var`
    Var,
    /// `global`
    Global,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `as`
    As,
    /// `true`
    True,
    /// `false`
    False,
    /// `spawn`
    Spawn,
    /// `bool`
    BoolTy,
    /// `u8`
    U8,
    /// `u16`
    U16,
    /// `u32`
    U32,
    /// `u64`
    U64,
    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `->`
    Arrow,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// End of input.
    Eof,
}

/// A token: kind plus source span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it sits in the source.
    pub span: Span,
}

impl Token {
    /// The token's text within `source`.
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.span.start..self.span.end]
    }
}

fn keyword(text: &str) -> Option<TokenKind> {
    Some(match text {
        "fn" => TokenKind::Fn,
        "let" => TokenKind::Let,
        "var" => TokenKind::Var,
        "global" => TokenKind::Global,
        "if" => TokenKind::If,
        "else" => TokenKind::Else,
        "while" => TokenKind::While,
        "for" => TokenKind::For,
        "return" => TokenKind::Return,
        "break" => TokenKind::Break,
        "continue" => TokenKind::Continue,
        "as" => TokenKind::As,
        "true" => TokenKind::True,
        "false" => TokenKind::False,
        "spawn" => TokenKind::Spawn,
        "bool" => TokenKind::BoolTy,
        "u8" => TokenKind::U8,
        "u16" => TokenKind::U16,
        "u32" => TokenKind::U32,
        "u64" => TokenKind::U64,
        _ => return None,
    })
}

/// Tokenizes `source`.
///
/// # Errors
///
/// Returns a [`CompileError`] for unterminated strings or characters outside
/// the language's alphabet.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    macro_rules! push {
        ($kind:expr, $start:expr, $end:expr) => {
            tokens.push(Token {
                kind: $kind,
                span: Span::new($start, $end, line),
            })
        };
    }

    while i < n {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= n {
                        return Err(CompileError::new(
                            Stage::Lex,
                            "unterminated block comment",
                            Span::new(start, n, line),
                        ));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < n && bytes[i] != b'"' {
                    if bytes[i] == b'\n' {
                        return Err(CompileError::new(
                            Stage::Lex,
                            "unterminated string literal",
                            Span::new(start, i, line),
                        ));
                    }
                    i += 1;
                }
                if i >= n {
                    return Err(CompileError::new(
                        Stage::Lex,
                        "unterminated string literal",
                        Span::new(start, n, line),
                    ));
                }
                i += 1; // closing quote
                push!(TokenKind::Str, start, i);
            }
            b'0'..=b'9' => {
                let start = i;
                if c == b'0' && i + 1 < n && (bytes[i + 1] | 0x20) == b'x' {
                    i += 2;
                    while i < n && (bytes[i].is_ascii_hexdigit() || bytes[i] == b'_') {
                        i += 1;
                    }
                } else {
                    while i < n && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                        i += 1;
                    }
                }
                push!(TokenKind::Int, start, i);
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let kind = keyword(&source[start..i]).unwrap_or(TokenKind::Ident);
                push!(kind, start, i);
            }
            _ => {
                let start = i;
                let two = if i + 1 < n { &source[i..i + 2] } else { "" };
                let (kind, len) = match two {
                    "->" => (TokenKind::Arrow, 2),
                    "<<" => (TokenKind::Shl, 2),
                    ">>" => (TokenKind::Shr, 2),
                    "<=" => (TokenKind::Le, 2),
                    ">=" => (TokenKind::Ge, 2),
                    "==" => (TokenKind::EqEq, 2),
                    "!=" => (TokenKind::Ne, 2),
                    "&&" => (TokenKind::AndAnd, 2),
                    "||" => (TokenKind::OrOr, 2),
                    _ => {
                        let kind = match c {
                            b'(' => TokenKind::LParen,
                            b')' => TokenKind::RParen,
                            b'{' => TokenKind::LBrace,
                            b'}' => TokenKind::RBrace,
                            b'[' => TokenKind::LBracket,
                            b']' => TokenKind::RBracket,
                            b',' => TokenKind::Comma,
                            b';' => TokenKind::Semi,
                            b':' => TokenKind::Colon,
                            b'=' => TokenKind::Assign,
                            b'+' => TokenKind::Plus,
                            b'-' => TokenKind::Minus,
                            b'*' => TokenKind::Star,
                            b'/' => TokenKind::Slash,
                            b'%' => TokenKind::Percent,
                            b'&' => TokenKind::Amp,
                            b'|' => TokenKind::Pipe,
                            b'^' => TokenKind::Caret,
                            b'~' => TokenKind::Tilde,
                            b'!' => TokenKind::Bang,
                            b'<' => TokenKind::Lt,
                            b'>' => TokenKind::Gt,
                            other => {
                                return Err(CompileError::new(
                                    Stage::Lex,
                                    format!("unexpected character {:?}", other as char),
                                    Span::new(start, start + 1, line),
                                ))
                            }
                        };
                        (kind, 1)
                    }
                };
                i += len;
                push!(kind, start, i);
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(n, n, line),
    });
    Ok(tokens)
}

/// Parses the text of an [`TokenKind::Int`] token into a value.
///
/// # Errors
///
/// Returns a [`CompileError`] if the literal overflows `u64`.
pub fn parse_int(text: &str, span: Span) -> Result<u64, CompileError> {
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    let parsed = if let Some(hex) = cleaned
        .strip_prefix("0x")
        .or_else(|| cleaned.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16)
    } else {
        cleaned.parse::<u64>()
    };
    parsed.map_err(|_| CompileError::new(Stage::Lex, format!("bad integer literal `{text}`"), span))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_function_header() {
        assert_eq!(
            kinds("fn f(a: u32) -> u64 {}"),
            vec![
                TokenKind::Fn,
                TokenKind::Ident,
                TokenKind::LParen,
                TokenKind::Ident,
                TokenKind::Colon,
                TokenKind::U32,
                TokenKind::RParen,
                TokenKind::Arrow,
                TokenKind::U64,
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators_longest_first() {
        assert_eq!(
            kinds("a <= b << c < d"),
            vec![
                TokenKind::Ident,
                TokenKind::Le,
                TokenKind::Ident,
                TokenKind::Shl,
                TokenKind::Ident,
                TokenKind::Lt,
                TokenKind::Ident,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_counted() {
        let toks = lex("// c1\n/* c2\nc3 */ x").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Ident);
        assert_eq!(toks[0].span.line, 3);
    }

    #[test]
    fn hex_and_underscored_integers() {
        assert_eq!(parse_int("0xFF", Span::default()).unwrap(), 255);
        assert_eq!(parse_int("1_000", Span::default()).unwrap(), 1000);
        assert!(parse_int("99999999999999999999999", Span::default()).is_err());
    }

    #[test]
    fn string_literals() {
        let src = "\"hello world\"";
        let toks = lex(src).unwrap();
        assert_eq!(toks[0].kind, TokenKind::Str);
        assert_eq!(toks[0].text(src), src);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"oops").is_err());
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn unknown_character_errors() {
        let err = lex("let x = @;").unwrap_err();
        assert_eq!(err.stage, Stage::Lex);
    }
}
