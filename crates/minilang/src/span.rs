//! Source positions used by compiler diagnostics.

use std::fmt;

/// A half-open byte range into the source text, with the 1-based line of its
/// start for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Span {
    /// Creates a span covering `start..end` on `line`.
    pub fn new(start: usize, end: usize, line: u32) -> Self {
        Span { start, end, line }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_takes_extremes() {
        let a = Span::new(4, 9, 2);
        let b = Span::new(1, 6, 1);
        let m = a.merge(b);
        assert_eq!((m.start, m.end, m.line), (1, 9, 1));
    }

    #[test]
    fn display_shows_line() {
        assert_eq!(Span::new(0, 1, 17).to_string(), "line 17");
    }
}
