//! Scalar widths and wrapping machine arithmetic.
//!
//! IR registers hold `u64` values; every operation carries a [`Width`] and
//! wraps modulo 2^width, exactly like machine registers. The symbolic
//! executor mirrors these semantics bit-for-bit so that a model produced by
//! the solver replays identically on the concrete interpreter.

use std::fmt;

/// Operand width in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Width {
    /// 8-bit.
    W8,
    /// 16-bit.
    W16,
    /// 32-bit.
    W32,
    /// 64-bit.
    W64,
}

impl Width {
    /// Number of bits.
    pub fn bits(self) -> u32 {
        match self {
            Width::W8 => 8,
            Width::W16 => 16,
            Width::W32 => 32,
            Width::W64 => 64,
        }
    }

    /// Number of bytes.
    pub fn bytes(self) -> u64 {
        u64::from(self.bits() / 8)
    }

    /// Bit mask selecting the low `bits()` bits.
    pub fn mask(self) -> u64 {
        match self {
            Width::W64 => u64::MAX,
            w => (1u64 << w.bits()) - 1,
        }
    }

    /// Truncates `v` to this width.
    pub fn trunc(self, v: u64) -> u64 {
        v & self.mask()
    }

    /// Sign-extends the low `bits()` bits of `v` to 64 bits.
    pub fn sext(self, v: u64) -> u64 {
        let b = self.bits();
        if b == 64 {
            return v;
        }
        let shift = 64 - b;
        (((v << shift) as i64) >> shift) as u64
    }

    /// Width with exactly `bits` bits, if one exists.
    pub fn from_bits(bits: u32) -> Option<Width> {
        match bits {
            8 => Some(Width::W8),
            16 => Some(Width::W16),
            32 => Some(Width::W32),
            64 => Some(Width::W64),
            _ => None,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.bits())
    }
}

/// Binary operations on IR registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division. Divisor zero faults.
    UDiv,
    /// Unsigned remainder. Divisor zero faults.
    URem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift; shift amounts are taken modulo the width.
    Shl,
    /// Logical right shift; shift amounts are taken modulo the width.
    LShr,
    /// Arithmetic right shift; shift amounts are taken modulo the width.
    AShr,
}

impl BinOp {
    /// Evaluates the operation at `w`, wrapping. Returns `None` for division
    /// by zero (the interpreter turns that into a fault).
    pub fn eval(self, w: Width, a: u64, b: u64) -> Option<u64> {
        let (a, b) = (w.trunc(a), w.trunc(b));
        let r = match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::UDiv => {
                if b == 0 {
                    return None;
                }
                a / b
            }
            BinOp::URem => {
                if b == 0 {
                    return None;
                }
                a % b
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a << (b % u64::from(w.bits())),
            BinOp::LShr => a >> (b % u64::from(w.bits())),
            BinOp::AShr => {
                let sh = b % u64::from(w.bits());
                w.trunc((w.sext(a) as i64 >> sh) as u64)
            }
        };
        Some(w.trunc(r))
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::UDiv => "udiv",
            BinOp::URem => "urem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
        };
        f.write_str(s)
    }
}

/// Comparison predicates; results are 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
}

impl CmpOp {
    /// Evaluates the predicate at width `w`.
    pub fn eval(self, w: Width, a: u64, b: u64) -> bool {
        let (a, b) = (w.trunc(a), w.trunc(b));
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Ult => a < b,
            CmpOp::Ule => a <= b,
            CmpOp::Slt => (w.sext(a) as i64) < (w.sext(b) as i64),
            CmpOp::Sle => (w.sext(a) as i64) <= (w.sext(b) as i64),
        }
    }

    /// The predicate testing the negation of `self`.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            // !(a < b) is b <= a: negation also swaps operands for orderings,
            // which this helper cannot express, so orderings map to their
            // complements with swapped operands handled by the caller.
            CmpOp::Ult => CmpOp::Ule,
            CmpOp::Ule => CmpOp::Ult,
            CmpOp::Slt => CmpOp::Sle,
            CmpOp::Sle => CmpOp::Slt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Ult => "ult",
            CmpOp::Ule => "ule",
            CmpOp::Slt => "slt",
            CmpOp::Sle => "sle",
        };
        f.write_str(s)
    }
}

/// Unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Two's-complement negation.
    Neg,
    /// Bitwise not.
    Not,
    /// Boolean not: 0 becomes 1, nonzero becomes 0.
    LNot,
}

impl UnOp {
    /// Evaluates the operation at width `w`, wrapping.
    pub fn eval(self, w: Width, a: u64) -> u64 {
        let a = w.trunc(a);
        let r = match self {
            UnOp::Neg => a.wrapping_neg(),
            UnOp::Not => !a,
            UnOp::LNot => u64::from(a == 0),
        };
        w.trunc(r)
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::LNot => "lnot",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(Width::W8.mask(), 0xff);
        assert_eq!(Width::W64.mask(), u64::MAX);
        assert_eq!(Width::W16.trunc(0x1_2345), 0x2345);
        assert_eq!(Width::W8.sext(0x80), 0xffff_ffff_ffff_ff80);
        assert_eq!(Width::W8.sext(0x7f), 0x7f);
        assert_eq!(Width::from_bits(32), Some(Width::W32));
        assert_eq!(Width::from_bits(12), None);
    }

    #[test]
    fn add_wraps_at_width() {
        assert_eq!(BinOp::Add.eval(Width::W8, 0xff, 1), Some(0));
        assert_eq!(BinOp::Add.eval(Width::W32, u32::MAX as u64, 2), Some(1));
        assert_eq!(BinOp::Mul.eval(Width::W16, 0x8000, 2), Some(0));
    }

    #[test]
    fn division_by_zero_is_none() {
        assert_eq!(BinOp::UDiv.eval(Width::W32, 5, 0), None);
        assert_eq!(BinOp::URem.eval(Width::W32, 5, 0), None);
        assert_eq!(BinOp::UDiv.eval(Width::W32, 7, 2), Some(3));
    }

    #[test]
    fn shifts_mod_width() {
        assert_eq!(BinOp::Shl.eval(Width::W8, 1, 9), Some(2));
        assert_eq!(BinOp::LShr.eval(Width::W32, 0x8000_0000, 31), Some(1));
        assert_eq!(BinOp::AShr.eval(Width::W8, 0x80, 7), Some(0xff));
    }

    #[test]
    fn signed_comparisons() {
        // 0xff is -1 at width 8.
        assert!(CmpOp::Slt.eval(Width::W8, 0xff, 0));
        assert!(!CmpOp::Ult.eval(Width::W8, 0xff, 0));
        assert!(CmpOp::Sle.eval(Width::W32, 0xffff_ffff, 0xffff_ffff));
    }

    #[test]
    fn unary_ops() {
        assert_eq!(UnOp::Neg.eval(Width::W8, 1), 0xff);
        assert_eq!(UnOp::Not.eval(Width::W8, 0), 0xff);
        assert_eq!(UnOp::LNot.eval(Width::W32, 0), 1);
        assert_eq!(UnOp::LNot.eval(Width::W32, 99), 0);
    }
}
