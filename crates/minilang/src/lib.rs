//! A small imperative systems language used as the "production program"
//! substrate for the Execution Reconstruction (ER) reproduction.
//!
//! The original paper traces x86-64 binaries of real systems (PHP, SQLite,
//! memcached, ...) with Intel PT and symbolically executes them with KLEE.
//! This crate provides the equivalent substrate entirely in Rust:
//!
//! * a C-like source language ([`ast`], [`lexer`], [`parser`], [`types`]),
//! * a register-based IR ([`ir`], [`lower`]) on which both the concrete
//!   interpreter and the symbolic executor operate,
//! * a concrete interpreter ([`interp`]) with a flat byte-addressed memory
//!   ([`mem`]), a nondeterministic environment ([`mod@env`]), cooperative
//!   threads ([`interp::Machine`]), and pluggable control-flow/data tracing
//!   ([`trace`]) that models what Intel PT observes.
//!
//! # Example
//!
//! ```
//! use er_minilang::compile;
//! use er_minilang::env::Env;
//! use er_minilang::interp::{Machine, RunOutcome};
//!
//! let program = compile(
//!     r#"
//!     fn main() {
//!         let a: u32 = input_u32(0);
//!         assert(a != 7, "seven is right out");
//!     }
//!     "#,
//! )?;
//! let mut env = Env::new();
//! env.push_input(0, &7u32.to_le_bytes());
//! let outcome = Machine::new(&program, env).run();
//! assert!(matches!(outcome.outcome, RunOutcome::Failure(_)));
//! # Ok::<(), er_minilang::CompileError>(())
//! ```

pub mod ast;
pub mod env;
pub mod error;
pub mod interp;
pub mod ir;
pub mod lexer;
pub mod lower;
pub mod mem;
pub mod parser;
pub mod span;
pub mod trace;
pub mod types;
pub mod value;

pub use error::{CompileError, Failure, FailureKind, RuntimeFault};
pub use ir::{BlockId, FuncId, InstrId, Program};
pub use span::Span;
pub use value::Width;

/// Compiles source text to an IR [`Program`].
///
/// This is the front door of the crate: lex, parse, type-check, and lower.
///
/// # Errors
///
/// Returns a [`CompileError`] describing the first lexical, syntactic, or
/// type error encountered.
///
/// ```
/// let program = er_minilang::compile("fn main() { print(42); }")?;
/// assert_eq!(program.funcs.len(), 1);
/// # Ok::<(), er_minilang::CompileError>(())
/// ```
pub fn compile(source: &str) -> Result<Program, CompileError> {
    let tokens = lexer::lex(source)?;
    let unit = parser::parse(&tokens, source)?;
    let typed = types::check(&unit)?;
    Ok(lower::lower(&typed))
}
