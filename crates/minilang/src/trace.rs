//! Trace sinks: the interpreter's observation interface.
//!
//! The concrete interpreter reports control-flow and data events through a
//! [`TraceSink`]. Different sinks model different monitoring systems:
//!
//! * `NullSink` — no monitoring (the overhead baseline),
//! * `er_pt::PtSink` — Intel-PT-style packetized tracing (ER's runtime),
//! * `er_baselines::rr::RrRecorder` — full input/schedule recording.
//!
//! Keeping the interface here (and tiny) is what lets Fig. 6's overhead
//! comparison measure only the cost each monitoring strategy adds.

use crate::env::InputEvent;
use crate::ir::FuncId;

/// Receives execution events from the interpreter.
///
/// All methods default to no-ops so sinks implement only what they observe.
pub trait TraceSink {
    /// A conditional branch executed; `taken` is its outcome (a TNT bit).
    #[inline]
    fn cond_branch(&mut self, taken: bool) {
        let _ = taken;
    }

    /// A direct call to `func` executed (a TIP-style packet).
    #[inline]
    fn call(&mut self, func: FuncId) {
        let _ = func;
    }

    /// A function returned.
    #[inline]
    fn ret(&mut self) {}

    /// A direct call's argument values (observation hook for dynamic
    /// analyses like invariant mining; Intel PT does not see these).
    #[inline]
    fn call_args(&mut self, func: FuncId, args: &[u64]) {
        let _ = (func, args);
    }

    /// A function's return value (observation hook; not a PT event).
    #[inline]
    fn ret_value(&mut self, func: FuncId, value: u64) {
        let _ = (func, value);
    }

    /// A `ptwrite` instruction recorded `value`.
    #[inline]
    fn ptwrite(&mut self, value: u64) {
        let _ = value;
    }

    /// The scheduler switched execution to thread `tid` at virtual time
    /// `tsc` (instruction count). Models PT's per-logical-CPU timestamps.
    #[inline]
    fn thread_resume(&mut self, tid: u64, tsc: u64) {
        let _ = (tid, tsc);
    }

    /// A nondeterministic input was consumed. Intel PT does *not* see this;
    /// it exists for the record/replay baseline.
    #[inline]
    fn input(&mut self, event: &InputEvent) {
        let _ = event;
    }

    /// The virtual clock was read. Intel PT does *not* see this either.
    #[inline]
    fn clock_read(&mut self, value: u64) {
        let _ = value;
    }
}

/// A sink that observes nothing: the unmonitored production baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {}

/// An event captured by [`VecSink`]; mirrors the sink methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Conditional branch outcome.
    Branch(bool),
    /// Direct call.
    Call(FuncId),
    /// Return.
    Ret,
    /// `ptwrite` payload.
    PtWrite(u64),
    /// Thread scheduled in at a virtual time.
    ThreadResume {
        /// Thread id.
        tid: u64,
        /// Virtual timestamp (global instruction count).
        tsc: u64,
    },
    /// Input consumed.
    Input(InputEvent),
    /// Clock read.
    Clock(u64),
}

/// A sink that buffers every event — convenient for tests and for feeding
/// traces to offline analyses without packet encoding.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// All captured events in order.
    pub events: Vec<Event>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Just the branch outcomes, in order.
    pub fn branches(&self) -> Vec<bool> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Branch(b) => Some(*b),
                _ => None,
            })
            .collect()
    }

    /// Just the `ptwrite` payloads, in order.
    pub fn ptwrites(&self) -> Vec<u64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::PtWrite(v) => Some(*v),
                _ => None,
            })
            .collect()
    }
}

impl TraceSink for VecSink {
    fn cond_branch(&mut self, taken: bool) {
        self.events.push(Event::Branch(taken));
    }

    fn call(&mut self, func: FuncId) {
        self.events.push(Event::Call(func));
    }

    fn ret(&mut self) {
        self.events.push(Event::Ret);
    }

    fn ptwrite(&mut self, value: u64) {
        self.events.push(Event::PtWrite(value));
    }

    fn thread_resume(&mut self, tid: u64, tsc: u64) {
        self.events.push(Event::ThreadResume { tid, tsc });
    }

    fn input(&mut self, event: &InputEvent) {
        self.events.push(Event::Input(event.clone()));
    }

    fn clock_read(&mut self, value: u64) {
        self.events.push(Event::Clock(value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_buffers_in_order() {
        let mut s = VecSink::new();
        s.cond_branch(true);
        s.ptwrite(42);
        s.cond_branch(false);
        s.ret();
        assert_eq!(s.branches(), vec![true, false]);
        assert_eq!(s.ptwrites(), vec![42]);
        assert_eq!(s.events.len(), 4);
    }

    #[test]
    fn null_sink_is_a_no_op() {
        let mut s = NullSink;
        s.cond_branch(true);
        s.call(FuncId(0));
        s.ptwrite(1);
    }
}
