//! Type checker: resolves names, checks widths, and produces a typed AST
//! consumed by [`crate::lower`].

use crate::ast::*;
use crate::error::{CompileError, Stage};
use crate::span::Span;
use crate::value::Width;
use std::collections::HashMap;

/// A builtin function recognized by the checker and lowered specially.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `input_u8(src)`, ... — consume bytes from a nondeterministic stream.
    Input(Width),
    /// `alloc(size) -> u64`.
    Alloc,
    /// `free(ptr)`.
    Free,
    /// `load8(ptr)`, ...
    Load(Width),
    /// `store8(ptr, v)`, ...
    Store(Width),
    /// `print(v)`.
    Print,
    /// `clock() -> u64`.
    Clock,
    /// `join(tid)`.
    Join,
    /// `lock(id)`.
    Lock,
    /// `unlock(id)`.
    Unlock,
    /// `assert(cond, "msg")`.
    Assert,
    /// `abort("msg")`.
    Abort,
    /// `ptwrite(v)` — explicit trace write.
    PtWrite,
}

fn builtin(name: &str) -> Option<Builtin> {
    Some(match name {
        "input_u8" => Builtin::Input(Width::W8),
        "input_u16" => Builtin::Input(Width::W16),
        "input_u32" => Builtin::Input(Width::W32),
        "input_u64" => Builtin::Input(Width::W64),
        "alloc" => Builtin::Alloc,
        "free" => Builtin::Free,
        "load8" => Builtin::Load(Width::W8),
        "load16" => Builtin::Load(Width::W16),
        "load32" => Builtin::Load(Width::W32),
        "load64" => Builtin::Load(Width::W64),
        "store8" => Builtin::Store(Width::W8),
        "store16" => Builtin::Store(Width::W16),
        "store32" => Builtin::Store(Width::W32),
        "store64" => Builtin::Store(Width::W64),
        "print" => Builtin::Print,
        "clock" => Builtin::Clock,
        "join" => Builtin::Join,
        "lock" => Builtin::Lock,
        "unlock" => Builtin::Unlock,
        "assert" => Builtin::Assert,
        "abort" => Builtin::Abort,
        "ptwrite" => Builtin::PtWrite,
        _ => return None,
    })
}

/// Slot index of a local variable within its function (parameters first).
pub type Slot = usize;

/// A resolved local variable.
#[derive(Debug, Clone)]
pub struct LocalInfo {
    /// Source name.
    pub name: String,
    /// Declared type (scalars or arrays).
    pub ty: Type,
}

/// A resolved callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Callee {
    /// Index into [`TUnit::funcs`].
    User(usize),
    /// A builtin.
    Builtin(Builtin),
}

/// A typed expression.
#[derive(Debug, Clone)]
pub struct TExpr {
    /// Static type.
    pub ty: Type,
    /// Structure.
    pub kind: TExprKind,
    /// Source location.
    pub span: Span,
}

/// Structure of a typed expression.
#[derive(Debug, Clone)]
pub enum TExprKind {
    /// Constant.
    Int(u64),
    /// Local read.
    Local(Slot),
    /// Global scalar read.
    Global(usize),
    /// Global array element read.
    IndexGlobal {
        /// Global index.
        gid: usize,
        /// Element index.
        index: Box<TExpr>,
    },
    /// Stack-array element read.
    IndexLocal {
        /// Local slot holding the array.
        slot: Slot,
        /// Element index.
        index: Box<TExpr>,
    },
    /// Address of a global.
    AddrGlobal(usize),
    /// Address of a stack array.
    AddrLocal(Slot),
    /// Binary operation (never `LAnd`/`LOr`; those lower to control flow).
    Bin {
        /// Operator.
        op: AstBinOp,
        /// Left operand.
        lhs: Box<TExpr>,
        /// Right operand.
        rhs: Box<TExpr>,
    },
    /// Short-circuit `&&`/`||`.
    Logic {
        /// `true` for `&&`, `false` for `||`.
        is_and: bool,
        /// Left operand.
        lhs: Box<TExpr>,
        /// Right operand.
        rhs: Box<TExpr>,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: AstUnOp,
        /// Operand.
        expr: Box<TExpr>,
    },
    /// Width change.
    Cast(Box<TExpr>),
    /// Call to a user function or builtin.
    Call {
        /// Callee.
        callee: Callee,
        /// Arguments.
        args: Vec<TExpr>,
        /// Message literal for assert/abort.
        str_arg: Option<String>,
    },
    /// Thread spawn.
    Spawn {
        /// Index into [`TUnit::funcs`].
        func: usize,
        /// Arguments.
        args: Vec<TExpr>,
    },
}

/// A typed assignable location.
#[derive(Debug, Clone)]
pub enum TLValue {
    /// Scalar local.
    Local(Slot),
    /// Scalar global.
    Global(usize),
    /// Global array element.
    IndexGlobal {
        /// Global index.
        gid: usize,
        /// Element index.
        index: TExpr,
    },
    /// Stack-array element.
    IndexLocal {
        /// Local slot holding the array.
        slot: Slot,
        /// Element index.
        index: TExpr,
    },
}

/// A typed statement.
#[derive(Debug, Clone)]
pub enum TStmt {
    /// Initialize local `slot`.
    Let {
        /// Destination slot.
        slot: Slot,
        /// Initializer.
        init: TExpr,
    },
    /// Bring a stack-array slot into existence (storage allocated at entry).
    VarArray {
        /// Array slot.
        slot: Slot,
    },
    /// Assignment.
    Assign {
        /// Target.
        target: TLValue,
        /// Value.
        value: TExpr,
    },
    /// Expression statement.
    Expr(TExpr),
    /// Conditional.
    If {
        /// Condition (boolean).
        cond: TExpr,
        /// Then branch.
        then_blk: Vec<TStmt>,
        /// Else branch.
        else_blk: Vec<TStmt>,
    },
    /// Loop.
    While {
        /// Condition (boolean).
        cond: TExpr,
        /// Body.
        body: Vec<TStmt>,
    },
    /// Return.
    Return(Option<TExpr>),
    /// Break out of the innermost loop.
    Break,
    /// Continue the innermost loop.
    Continue,
}

/// A typed function.
#[derive(Debug, Clone)]
pub struct TFunc {
    /// Name.
    pub name: String,
    /// Number of parameters (the first slots of `locals`).
    pub n_params: usize,
    /// Return type.
    pub ret: Option<Type>,
    /// All locals, parameters first.
    pub locals: Vec<LocalInfo>,
    /// Body.
    pub body: Vec<TStmt>,
}

/// A fully type-checked unit.
#[derive(Debug, Clone)]
pub struct TUnit {
    /// Globals in declaration order.
    pub globals: Vec<GlobalDecl>,
    /// Functions in declaration order.
    pub funcs: Vec<TFunc>,
    /// Index of `main` in `funcs`.
    pub entry: usize,
}

struct FuncSig {
    params: Vec<Type>,
    ret: Option<Type>,
}

struct Checker<'a> {
    globals: &'a [GlobalDecl],
    global_idx: HashMap<String, usize>,
    sigs: Vec<FuncSig>,
    func_idx: HashMap<String, usize>,
}

struct FnCtx {
    locals: Vec<LocalInfo>,
    /// Stack of scopes; each maps name -> slot.
    scopes: Vec<HashMap<String, Slot>>,
    ret: Option<Type>,
    loop_depth: usize,
}

impl FnCtx {
    fn lookup(&self, name: &str) -> Option<Slot> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).copied()
    }

    fn declare(&mut self, name: &str, ty: Type) -> Slot {
        let slot = self.locals.len();
        self.locals.push(LocalInfo {
            name: name.to_string(),
            ty,
        });
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), slot);
        slot
    }
}

fn err(message: impl Into<String>, span: Span) -> CompileError {
    CompileError::new(Stage::Type, message, span)
}

/// Type-checks a parsed [`Unit`].
///
/// # Errors
///
/// Returns a [`CompileError`] for unknown names, width mismatches, bad
/// builtin arity, a missing `main`, and similar static errors.
pub fn check(unit: &Unit) -> Result<TUnit, CompileError> {
    let mut global_idx = HashMap::new();
    for (i, g) in unit.globals.iter().enumerate() {
        if global_idx.insert(g.name.clone(), i).is_some() {
            return Err(err(format!("duplicate global `{}`", g.name), g.span));
        }
        if let (Some(v), Type::Int(w)) = (g.init, g.ty) {
            if v > w.mask() {
                return Err(err(format!("initializer {v} does not fit in {w}"), g.span));
            }
        }
    }
    let mut func_idx = HashMap::new();
    let mut sigs = Vec::new();
    for (i, f) in unit.funcs.iter().enumerate() {
        if builtin(&f.name).is_some() {
            return Err(err(
                format!("`{}` shadows a builtin function", f.name),
                f.span,
            ));
        }
        if func_idx.insert(f.name.clone(), i).is_some() {
            return Err(err(format!("duplicate function `{}`", f.name), f.span));
        }
        sigs.push(FuncSig {
            params: f.params.iter().map(|p| p.ty).collect(),
            ret: f.ret,
        });
    }
    let entry = *func_idx
        .get("main")
        .ok_or_else(|| err("missing `main` function", Span::default()))?;
    if !unit.funcs[entry].params.is_empty() {
        return Err(err("`main` takes no parameters", unit.funcs[entry].span));
    }

    let checker = Checker {
        globals: &unit.globals,
        global_idx,
        sigs,
        func_idx,
    };
    let mut funcs = Vec::new();
    for f in &unit.funcs {
        funcs.push(checker.check_func(f)?);
    }
    Ok(TUnit {
        globals: unit.globals.clone(),
        funcs,
        entry,
    })
}

impl<'a> Checker<'a> {
    fn check_func(&self, f: &FuncDecl) -> Result<TFunc, CompileError> {
        let mut ctx = FnCtx {
            locals: Vec::new(),
            scopes: vec![HashMap::new()],
            ret: f.ret,
            loop_depth: 0,
        };
        for p in &f.params {
            if ctx.lookup(&p.name).is_some() {
                return Err(err(format!("duplicate parameter `{}`", p.name), p.span));
            }
            ctx.declare(&p.name, p.ty);
        }
        let body = self.check_block(&f.body, &mut ctx)?;
        Ok(TFunc {
            name: f.name.clone(),
            n_params: f.params.len(),
            ret: f.ret,
            locals: ctx.locals,
            body,
        })
    }

    fn check_block(&self, b: &Block, ctx: &mut FnCtx) -> Result<Vec<TStmt>, CompileError> {
        ctx.scopes.push(HashMap::new());
        let result = b
            .stmts
            .iter()
            .map(|s| self.check_stmt(s, ctx))
            .collect::<Result<Vec<_>, _>>();
        ctx.scopes.pop();
        result
    }

    fn check_stmt(&self, s: &Stmt, ctx: &mut FnCtx) -> Result<TStmt, CompileError> {
        match s {
            Stmt::Let { name, ty, init, .. } => {
                let init = self.check_expr(init, Some(*ty), ctx)?;
                let slot = ctx.declare(name, *ty);
                Ok(TStmt::Let { slot, init })
            }
            Stmt::VarArray {
                name, elem, len, ..
            } => {
                let slot = ctx.declare(name, Type::Array(*elem, *len));
                Ok(TStmt::VarArray { slot })
            }
            Stmt::Assign { target, value, .. } => {
                let (target, target_ty) = self.check_lvalue(target, ctx)?;
                let value = self.check_expr(value, Some(target_ty), ctx)?;
                Ok(TStmt::Assign { target, value })
            }
            Stmt::Expr(e) => Ok(TStmt::Expr(self.check_expr(e, None, ctx)?)),
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                let cond = self.check_bool(cond, ctx)?;
                let then_blk = self.check_block(then_blk, ctx)?;
                let else_blk = self.check_block(else_blk, ctx)?;
                Ok(TStmt::If {
                    cond,
                    then_blk,
                    else_blk,
                })
            }
            Stmt::While { cond, body, .. } => {
                let cond = self.check_bool(cond, ctx)?;
                ctx.loop_depth += 1;
                let body = self.check_block(body, ctx)?;
                ctx.loop_depth -= 1;
                Ok(TStmt::While { cond, body })
            }
            Stmt::Return { value, span } => match (&ctx.ret.clone(), value) {
                (None, None) => Ok(TStmt::Return(None)),
                (None, Some(_)) => Err(err("returning a value from a procedure", *span)),
                (Some(_), None) => Err(err("missing return value", *span)),
                (Some(ty), Some(v)) => {
                    let v = self.check_expr(v, Some(*ty), ctx)?;
                    Ok(TStmt::Return(Some(v)))
                }
            },
            Stmt::Break(span) => {
                if ctx.loop_depth == 0 {
                    return Err(err("`break` outside loop", *span));
                }
                Ok(TStmt::Break)
            }
            Stmt::Continue(span) => {
                if ctx.loop_depth == 0 {
                    return Err(err("`continue` outside loop", *span));
                }
                Ok(TStmt::Continue)
            }
        }
    }

    fn check_lvalue(&self, lv: &LValue, ctx: &mut FnCtx) -> Result<(TLValue, Type), CompileError> {
        match lv {
            LValue::Name(name, span) => {
                if let Some(slot) = ctx.lookup(name) {
                    let ty = ctx.locals[slot].ty;
                    if matches!(ty, Type::Array(..)) {
                        return Err(err("cannot assign to an array as a whole", *span));
                    }
                    return Ok((TLValue::Local(slot), ty));
                }
                if let Some(&gid) = self.global_idx.get(name) {
                    let ty = self.globals[gid].ty;
                    if matches!(ty, Type::Array(..)) {
                        return Err(err("cannot assign to an array as a whole", *span));
                    }
                    return Ok((TLValue::Global(gid), ty));
                }
                Err(err(format!("unknown variable `{name}`"), *span))
            }
            LValue::Index { array, index, span } => {
                let index_checked = self.check_index(index, ctx)?;
                if let Some(slot) = ctx.lookup(array) {
                    let Type::Array(w, _) = ctx.locals[slot].ty else {
                        return Err(err(format!("`{array}` is not an array"), *span));
                    };
                    return Ok((
                        TLValue::IndexLocal {
                            slot,
                            index: index_checked,
                        },
                        Type::Int(w),
                    ));
                }
                if let Some(&gid) = self.global_idx.get(array) {
                    let Type::Array(w, _) = self.globals[gid].ty else {
                        return Err(err(format!("`{array}` is not an array"), *span));
                    };
                    return Ok((
                        TLValue::IndexGlobal {
                            gid,
                            index: index_checked,
                        },
                        Type::Int(w),
                    ));
                }
                Err(err(format!("unknown array `{array}`"), *span))
            }
        }
    }

    fn check_index(&self, index: &Expr, ctx: &mut FnCtx) -> Result<TExpr, CompileError> {
        let idx = self.check_expr(index, None, ctx)?;
        match idx.ty {
            Type::Int(_) => Ok(idx),
            _ => Err(err("array index must be an integer", idx.span)),
        }
    }

    fn check_bool(&self, e: &Expr, ctx: &mut FnCtx) -> Result<TExpr, CompileError> {
        let t = self.check_expr(e, Some(Type::Bool), ctx)?;
        match t.ty {
            Type::Bool => Ok(t),
            _ => Err(err("expected a boolean expression", t.span)),
        }
    }

    fn check_expr(
        &self,
        e: &Expr,
        expected: Option<Type>,
        ctx: &mut FnCtx,
    ) -> Result<TExpr, CompileError> {
        let t = self.infer_expr(e, expected, ctx)?;
        if let Some(exp) = expected {
            if t.ty != exp {
                return Err(err(
                    format!("type mismatch: expected {exp:?}, found {:?}", t.ty),
                    t.span,
                ));
            }
        }
        Ok(t)
    }

    fn infer_expr(
        &self,
        e: &Expr,
        expected: Option<Type>,
        ctx: &mut FnCtx,
    ) -> Result<TExpr, CompileError> {
        let span = e.span();
        match e {
            Expr::Int(v, _) => {
                let ty = match expected {
                    Some(Type::Int(w)) => {
                        if *v > w.mask() {
                            return Err(err(format!("literal {v} does not fit in {w}"), span));
                        }
                        Type::Int(w)
                    }
                    _ => Type::Int(Width::W64),
                };
                Ok(TExpr {
                    ty,
                    kind: TExprKind::Int(*v),
                    span,
                })
            }
            Expr::Bool(b, _) => Ok(TExpr {
                ty: Type::Bool,
                kind: TExprKind::Int(u64::from(*b)),
                span,
            }),
            Expr::Name(name, _) => {
                if let Some(slot) = ctx.lookup(name) {
                    let ty = ctx.locals[slot].ty;
                    if matches!(ty, Type::Array(..)) {
                        // Arrays decay to their base address.
                        return Ok(TExpr {
                            ty: Type::Int(Width::W64),
                            kind: TExprKind::AddrLocal(slot),
                            span,
                        });
                    }
                    return Ok(TExpr {
                        ty,
                        kind: TExprKind::Local(slot),
                        span,
                    });
                }
                if let Some(&gid) = self.global_idx.get(name) {
                    let ty = self.globals[gid].ty;
                    if matches!(ty, Type::Array(..)) {
                        return Ok(TExpr {
                            ty: Type::Int(Width::W64),
                            kind: TExprKind::AddrGlobal(gid),
                            span,
                        });
                    }
                    return Ok(TExpr {
                        ty,
                        kind: TExprKind::Global(gid),
                        span,
                    });
                }
                Err(err(format!("unknown variable `{name}`"), span))
            }
            Expr::Index { array, index, .. } => {
                let idx = self.check_index(index, ctx)?;
                if let Some(slot) = ctx.lookup(array) {
                    let Type::Array(w, _) = ctx.locals[slot].ty else {
                        return Err(err(format!("`{array}` is not an array"), span));
                    };
                    return Ok(TExpr {
                        ty: Type::Int(w),
                        kind: TExprKind::IndexLocal {
                            slot,
                            index: Box::new(idx),
                        },
                        span,
                    });
                }
                if let Some(&gid) = self.global_idx.get(array) {
                    let Type::Array(w, _) = self.globals[gid].ty else {
                        return Err(err(format!("`{array}` is not an array"), span));
                    };
                    return Ok(TExpr {
                        ty: Type::Int(w),
                        kind: TExprKind::IndexGlobal {
                            gid,
                            index: Box::new(idx),
                        },
                        span,
                    });
                }
                Err(err(format!("unknown array `{array}`"), span))
            }
            Expr::AddrOf(name, _) => {
                if let Some(slot) = ctx.lookup(name) {
                    return Ok(TExpr {
                        ty: Type::Int(Width::W64),
                        kind: TExprKind::AddrLocal(slot),
                        span,
                    });
                }
                if let Some(&gid) = self.global_idx.get(name) {
                    return Ok(TExpr {
                        ty: Type::Int(Width::W64),
                        kind: TExprKind::AddrGlobal(gid),
                        span,
                    });
                }
                Err(err(format!("unknown variable `{name}`"), span))
            }
            Expr::Bin { op, lhs, rhs, .. } => self.infer_bin(*op, lhs, rhs, expected, span, ctx),
            Expr::Un { op, expr, .. } => match op {
                AstUnOp::LNot => {
                    let inner = self.check_bool(expr, ctx)?;
                    Ok(TExpr {
                        ty: Type::Bool,
                        kind: TExprKind::Un {
                            op: *op,
                            expr: Box::new(inner),
                        },
                        span,
                    })
                }
                AstUnOp::Neg | AstUnOp::BitNot => {
                    let inner = self.infer_expr(expr, expected, ctx)?;
                    let Type::Int(_) = inner.ty else {
                        return Err(err("unary operator needs an integer", span));
                    };
                    Ok(TExpr {
                        ty: inner.ty,
                        kind: TExprKind::Un {
                            op: *op,
                            expr: Box::new(inner),
                        },
                        span,
                    })
                }
            },
            Expr::Cast { expr, ty, .. } => {
                let inner = self.infer_expr(expr, None, ctx)?;
                match (inner.ty, *ty) {
                    (Type::Int(_) | Type::Bool, Type::Int(_)) => Ok(TExpr {
                        ty: *ty,
                        kind: TExprKind::Cast(Box::new(inner)),
                        span,
                    }),
                    _ => Err(err("casts go between integer types", span)),
                }
            }
            Expr::Call {
                callee,
                args,
                str_arg,
                ..
            } => self.infer_call(callee, args, str_arg.clone(), span, ctx),
            Expr::Spawn { callee, args, .. } => {
                let &fi = self
                    .func_idx
                    .get(callee)
                    .ok_or_else(|| err(format!("unknown function `{callee}`"), span))?;
                let sig = &self.sigs[fi];
                if sig.params.len() != args.len() {
                    return Err(err(
                        format!(
                            "`{callee}` takes {} arguments, got {}",
                            sig.params.len(),
                            args.len()
                        ),
                        span,
                    ));
                }
                let args = args
                    .iter()
                    .zip(&sig.params)
                    .map(|(a, &ty)| self.check_expr(a, Some(ty), ctx))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(TExpr {
                    ty: Type::Int(Width::W64),
                    kind: TExprKind::Spawn { func: fi, args },
                    span,
                })
            }
        }
    }

    fn infer_bin(
        &self,
        op: AstBinOp,
        lhs: &Expr,
        rhs: &Expr,
        expected: Option<Type>,
        span: Span,
        ctx: &mut FnCtx,
    ) -> Result<TExpr, CompileError> {
        use AstBinOp::*;
        match op {
            LAnd | LOr => {
                let l = self.check_bool(lhs, ctx)?;
                let r = self.check_bool(rhs, ctx)?;
                Ok(TExpr {
                    ty: Type::Bool,
                    kind: TExprKind::Logic {
                        is_and: op == LAnd,
                        lhs: Box::new(l),
                        rhs: Box::new(r),
                    },
                    span,
                })
            }
            Lt | Le | Gt | Ge | Eq | Ne => {
                let (l, r) = self.infer_pair(lhs, rhs, None, ctx)?;
                Ok(TExpr {
                    ty: Type::Bool,
                    kind: TExprKind::Bin {
                        op,
                        lhs: Box::new(l),
                        rhs: Box::new(r),
                    },
                    span,
                })
            }
            _ => {
                let arith_expected = match expected {
                    Some(Type::Int(w)) => Some(Type::Int(w)),
                    _ => None,
                };
                let (l, r) = self.infer_pair(lhs, rhs, arith_expected, ctx)?;
                Ok(TExpr {
                    ty: l.ty,
                    kind: TExprKind::Bin {
                        op,
                        lhs: Box::new(l),
                        rhs: Box::new(r),
                    },
                    span,
                })
            }
        }
    }

    /// Infers a pair of operands that must agree on an integer type, letting
    /// a literal on either side adopt the other side's width.
    fn infer_pair(
        &self,
        lhs: &Expr,
        rhs: &Expr,
        expected: Option<Type>,
        ctx: &mut FnCtx,
    ) -> Result<(TExpr, TExpr), CompileError> {
        let lhs_is_lit = matches!(lhs, Expr::Int(..));
        let (l, r) = if lhs_is_lit && !matches!(rhs, Expr::Int(..)) {
            let r = self.infer_expr(rhs, expected, ctx)?;
            let l = self.check_expr(lhs, Some(r.ty), ctx)?;
            (l, r)
        } else {
            let l = self.infer_expr(lhs, expected, ctx)?;
            let r = self.check_expr(rhs, Some(l.ty), ctx)?;
            (l, r)
        };
        match (l.ty, r.ty) {
            (Type::Int(_), Type::Int(_)) | (Type::Bool, Type::Bool) => Ok((l, r)),
            _ => Err(err("operands must be integers of the same width", l.span)),
        }
    }

    fn infer_call(
        &self,
        callee: &str,
        args: &[Expr],
        str_arg: Option<String>,
        span: Span,
        ctx: &mut FnCtx,
    ) -> Result<TExpr, CompileError> {
        if let Some(b) = builtin(callee) {
            return self.infer_builtin(b, callee, args, str_arg, span, ctx);
        }
        let &fi = self
            .func_idx
            .get(callee)
            .ok_or_else(|| err(format!("unknown function `{callee}`"), span))?;
        if str_arg.is_some() {
            return Err(err("string arguments only allowed for assert/abort", span));
        }
        let sig = &self.sigs[fi];
        if sig.params.len() != args.len() {
            return Err(err(
                format!(
                    "`{callee}` takes {} arguments, got {}",
                    sig.params.len(),
                    args.len()
                ),
                span,
            ));
        }
        let args = args
            .iter()
            .zip(&sig.params)
            .map(|(a, &ty)| self.check_expr(a, Some(ty), ctx))
            .collect::<Result<Vec<_>, _>>()?;
        let ty = sig.ret.unwrap_or(Type::Int(Width::W64));
        Ok(TExpr {
            ty,
            kind: TExprKind::Call {
                callee: Callee::User(fi),
                args,
                str_arg: None,
            },
            span,
        })
    }

    fn infer_builtin(
        &self,
        b: Builtin,
        name: &str,
        args: &[Expr],
        str_arg: Option<String>,
        span: Span,
        ctx: &mut FnCtx,
    ) -> Result<TExpr, CompileError> {
        let arity_err = |n: usize| err(format!("`{name}` takes {n} argument(s)"), span);
        let mut checked = Vec::new();
        let ty = match b {
            Builtin::Input(w) => {
                if args.len() != 1 {
                    return Err(arity_err(1));
                }
                checked.push(self.check_expr(&args[0], Some(Type::Int(Width::W32)), ctx)?);
                Type::Int(w)
            }
            Builtin::Alloc => {
                if args.len() != 1 {
                    return Err(arity_err(1));
                }
                checked.push(self.check_expr(&args[0], Some(Type::Int(Width::W64)), ctx)?);
                Type::Int(Width::W64)
            }
            Builtin::Free | Builtin::Join | Builtin::Lock | Builtin::Unlock => {
                if args.len() != 1 {
                    return Err(arity_err(1));
                }
                checked.push(self.check_expr(&args[0], Some(Type::Int(Width::W64)), ctx)?);
                Type::Int(Width::W64) // procedures; value unused
            }
            Builtin::Load(w) => {
                if args.len() != 1 {
                    return Err(arity_err(1));
                }
                checked.push(self.check_expr(&args[0], Some(Type::Int(Width::W64)), ctx)?);
                Type::Int(w)
            }
            Builtin::Store(w) => {
                if args.len() != 2 {
                    return Err(arity_err(2));
                }
                checked.push(self.check_expr(&args[0], Some(Type::Int(Width::W64)), ctx)?);
                checked.push(self.check_expr(&args[1], Some(Type::Int(w)), ctx)?);
                Type::Int(Width::W64)
            }
            Builtin::Print | Builtin::PtWrite => {
                if args.len() != 1 {
                    return Err(arity_err(1));
                }
                let a = self.infer_expr(&args[0], None, ctx)?;
                if !matches!(a.ty, Type::Int(_) | Type::Bool) {
                    return Err(err("argument must be scalar", span));
                }
                checked.push(a);
                Type::Int(Width::W64)
            }
            Builtin::Clock => {
                if !args.is_empty() {
                    return Err(arity_err(0));
                }
                Type::Int(Width::W64)
            }
            Builtin::Assert => {
                if args.len() != 1 || str_arg.is_none() {
                    return Err(err("`assert` takes (condition, \"message\")", span));
                }
                checked.push(self.check_bool(&args[0], ctx)?);
                Type::Int(Width::W64)
            }
            Builtin::Abort => {
                if !args.is_empty() || str_arg.is_none() {
                    return Err(err("`abort` takes (\"message\")", span));
                }
                Type::Int(Width::W64)
            }
        };
        Ok(TExpr {
            ty,
            kind: TExprKind::Call {
                callee: Callee::Builtin(b),
                args: checked,
                str_arg,
            },
            span,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<TUnit, CompileError> {
        let toks = lex(src).unwrap();
        check(&parse(&toks, src).unwrap())
    }

    #[test]
    fn accepts_paper_example_shape() {
        let t = check_src(
            r#"
            global V: [u32; 256];
            fn foo(a: u32, b: u32, c: u32, d: u32) {
                let x: u32 = a + b;
                if x < 256 && c < 256 && d < 256 {
                    V[x] = 1;
                    if V[c] == 0 { V[c] = 512; }
                    V[V[x]] = x;
                    if c < d { if V[V[d]] == x { abort("boom"); } }
                }
            }
            fn main() { foo(0, 2, 0, 2); }
            "#,
        )
        .unwrap();
        assert_eq!(t.funcs.len(), 2);
        assert_eq!(t.funcs[0].n_params, 4);
        assert_eq!(t.entry, 1);
    }

    #[test]
    fn literal_adopts_expected_width() {
        let t = check_src("fn main() { let x: u8 = 200; let y: u8 = x + 1; }").unwrap();
        let TStmt::Let { init, .. } = &t.funcs[0].body[1] else {
            panic!()
        };
        assert_eq!(init.ty, Type::Int(Width::W8));
    }

    #[test]
    fn literal_overflow_rejected() {
        let e = check_src("fn main() { let x: u8 = 256; }").unwrap_err();
        assert!(e.message.contains("fit"));
    }

    #[test]
    fn width_mismatch_rejected() {
        let e = check_src("fn main() { let x: u8 = 1; let y: u32 = 2; let z: u32 = x + y; }")
            .unwrap_err();
        assert!(e.message.contains("mismatch"));
    }

    #[test]
    fn condition_must_be_bool() {
        let e = check_src("fn main() { let x: u32 = 1; if x { print(x); } }").unwrap_err();
        assert!(e.message.contains("mismatch") || e.message.contains("boolean"));
    }

    #[test]
    fn break_outside_loop_rejected() {
        let e = check_src("fn main() { break; }").unwrap_err();
        assert!(e.message.contains("break"));
    }

    #[test]
    fn main_required() {
        let e = check_src("fn helper() {}").unwrap_err();
        assert!(e.message.contains("main"));
    }

    #[test]
    fn shadowing_in_nested_blocks() {
        let t = check_src(
            "fn main() { let x: u32 = 1; if x == 1 { let x: u64 = 2; print(x); } print(x); }",
        )
        .unwrap();
        // Two distinct slots named x.
        assert_eq!(
            t.funcs[0].locals.iter().filter(|l| l.name == "x").count(),
            2
        );
    }

    #[test]
    fn builtin_arity_checked() {
        assert!(check_src("fn main() { let v: u8 = load8(); }").is_err());
        assert!(check_src("fn main() { assert(true); }").is_err());
        assert!(check_src("fn main() { abort(); }").is_err());
    }

    #[test]
    fn user_call_types_checked() {
        let e = check_src("fn f(a: u32) -> u32 { return a; }\nfn main() { let x: u64 = 1; f(x); }")
            .unwrap_err();
        assert!(e.message.contains("mismatch"));
    }

    #[test]
    fn spawn_returns_tid() {
        let t =
            check_src("fn w(a: u32) {}\nfn main() { let t: u64 = spawn w(1); join(t); }").unwrap();
        let TStmt::Let { init, .. } = &t.funcs[1].body[0] else {
            panic!()
        };
        assert_eq!(init.ty, Type::Int(Width::W64));
    }

    #[test]
    fn array_decays_to_address() {
        let t = check_src("global A: [u8; 4];\nfn main() { let p: u64 = A; let q: u64 = &A; }")
            .unwrap();
        assert_eq!(t.funcs[0].body.len(), 2);
    }
}
