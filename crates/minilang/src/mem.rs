//! Flat byte-addressed memory with globals, a heap, and per-thread stacks.
//!
//! The layout mirrors a process address space so that the workload bugs can
//! behave like their real-world counterparts:
//!
//! * addresses below [`NULL_GUARD`] fault as null dereferences;
//! * heap overflows silently corrupt the *next* allocation (latent bugs),
//!   while touching freed memory faults immediately (use-after-free);
//! * stack buffer overruns corrupt adjacent frame data silently.

use crate::error::RuntimeFault;
use crate::ir::Program;
use crate::value::Width;
use std::collections::{BTreeMap, HashMap};

/// Addresses below this value fault as null dereferences.
pub const NULL_GUARD: u64 = 0x1000;
/// Base of the global segment (must match [`crate::lower::GLOBAL_BASE`]).
pub const GLOBAL_BASE: u64 = crate::lower::GLOBAL_BASE;
/// Base of the heap segment.
pub const HEAP_BASE: u64 = 0x2000_0000;
/// Base of thread 0's stack; thread `t` starts at `STACK_BASE + t * STACK_STRIDE`.
pub const STACK_BASE: u64 = 0x4000_0000;
/// Address distance between consecutive thread stacks.
pub const STACK_STRIDE: u64 = 0x0100_0000;

/// Liveness of one heap allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AllocState {
    Live,
    Freed,
}

#[derive(Debug, Clone)]
struct HeapAlloc {
    size: u64,
    state: AllocState,
}

/// A growable, zero-initialized byte segment starting at `base`.
#[derive(Debug, Clone, Default)]
struct Segment {
    base: u64,
    data: Vec<u8>,
}

impl Segment {
    fn contains(&self, addr: u64, len: u64) -> bool {
        addr >= self.base && addr + len <= self.base + self.data.len() as u64
    }

    fn slice(&self, addr: u64, len: u64) -> &[u8] {
        let off = (addr - self.base) as usize;
        &self.data[off..off + len as usize]
    }

    fn slice_mut(&mut self, addr: u64, len: u64) -> &mut [u8] {
        let off = (addr - self.base) as usize;
        &mut self.data[off..off + len as usize]
    }
}

/// The whole address space of one running program.
#[derive(Debug, Clone)]
pub struct Memory {
    globals: Segment,
    heap: Segment,
    heap_allocs: BTreeMap<u64, HeapAlloc>,
    heap_next: u64,
    stacks: HashMap<u64, Segment>,
    stack_tops: HashMap<u64, u64>,
}

impl Memory {
    /// Creates the address space for `program`, laying out and initializing
    /// its globals.
    pub fn new(program: &Program) -> Self {
        let global_size = program
            .globals
            .iter()
            .map(|g| g.addr + g.size - GLOBAL_BASE)
            .max()
            .unwrap_or(0);
        let mut globals = Segment {
            base: GLOBAL_BASE,
            data: vec![0; global_size as usize],
        };
        for g in &program.globals {
            if g.size == g.elem.bytes() {
                // Scalar global: apply its initializer.
                let bytes = g.init.to_le_bytes();
                let n = g.elem.bytes() as usize;
                globals
                    .slice_mut(g.addr, n as u64)
                    .copy_from_slice(&bytes[..n]);
            }
        }
        Memory {
            globals,
            heap: Segment {
                base: HEAP_BASE,
                data: Vec::new(),
            },
            heap_allocs: BTreeMap::new(),
            heap_next: HEAP_BASE,
            stacks: HashMap::new(),
            stack_tops: HashMap::new(),
        }
    }

    /// Allocates `size` bytes on the heap (16-byte aligned, zeroed).
    /// Allocations are never reused, so use-after-free is always detectable.
    pub fn heap_alloc(&mut self, size: u64) -> u64 {
        let size = size.max(1);
        let base = self.heap_next;
        let padded = size.div_ceil(16) * 16;
        self.heap_next += padded;
        let needed = (self.heap_next - HEAP_BASE) as usize;
        if self.heap.data.len() < needed {
            self.heap.data.resize(needed, 0);
        }
        self.heap_allocs.insert(
            base,
            HeapAlloc {
                size,
                state: AllocState::Live,
            },
        );
        base
    }

    /// Frees the allocation starting at `addr`.
    ///
    /// # Errors
    ///
    /// Faults with [`RuntimeFault::InvalidFree`] if `addr` is not the base of
    /// a live allocation (including double frees).
    pub fn heap_free(&mut self, addr: u64) -> Result<(), RuntimeFault> {
        match self.heap_allocs.get_mut(&addr) {
            Some(a) if a.state == AllocState::Live => {
                a.state = AllocState::Freed;
                Ok(())
            }
            _ => Err(RuntimeFault::InvalidFree { addr }),
        }
    }

    /// The allocation (base, size, live) containing `addr`, if any.
    fn heap_alloc_containing(&self, addr: u64) -> Option<(u64, u64, bool)> {
        let (&base, a) = self.heap_allocs.range(..=addr).next_back()?;
        let padded = a.size.div_ceil(16) * 16;
        if addr < base + padded {
            Some((base, a.size, a.state == AllocState::Live))
        } else {
            None
        }
    }

    /// Allocates `size` bytes on thread `tid`'s stack. The returned address
    /// stays valid until [`Memory::stack_restore`] rolls past it.
    pub fn stack_alloc(&mut self, tid: u64, size: u64) -> u64 {
        let base = STACK_BASE + tid * STACK_STRIDE;
        let top = self.stack_tops.entry(tid).or_insert(base);
        let addr = *top;
        *top += size.div_ceil(16) * 16;
        let seg = self.stacks.entry(tid).or_insert_with(|| Segment {
            base,
            data: Vec::new(),
        });
        let needed = (*top - base) as usize;
        if seg.data.len() < needed {
            seg.data.resize(needed, 0);
        }
        addr
    }

    /// Current stack watermark for `tid`; pass it back to
    /// [`Memory::stack_restore`] when the frame returns.
    pub fn stack_watermark(&self, tid: u64) -> u64 {
        self.stack_tops
            .get(&tid)
            .copied()
            .unwrap_or(STACK_BASE + tid * STACK_STRIDE)
    }

    /// Pops a frame's stack allocations, zeroing the released bytes so that
    /// later frames start from a clean slate.
    pub fn stack_restore(&mut self, tid: u64, watermark: u64) {
        if let Some(top) = self.stack_tops.get_mut(&tid) {
            if watermark < *top {
                if let Some(seg) = self.stacks.get_mut(&tid) {
                    let lo = (watermark - seg.base) as usize;
                    let hi = ((*top - seg.base) as usize).min(seg.data.len());
                    seg.data[lo..hi].fill(0);
                }
                *top = watermark;
            }
        }
    }

    fn segment_for(&self, addr: u64, len: u64) -> Option<&Segment> {
        if self.globals.contains(addr, len) {
            return Some(&self.globals);
        }
        if self.heap.contains(addr, len) {
            return Some(&self.heap);
        }
        self.stacks.values().find(|s| s.contains(addr, len))
    }

    fn segment_for_mut(&mut self, addr: u64, len: u64) -> Option<&mut Segment> {
        if self.globals.contains(addr, len) {
            return Some(&mut self.globals);
        }
        if self.heap.contains(addr, len) {
            return Some(&mut self.heap);
        }
        self.stacks.values_mut().find(|s| s.contains(addr, len))
    }

    fn check(&self, addr: u64, len: u64) -> Result<(), RuntimeFault> {
        if addr < NULL_GUARD {
            return Err(RuntimeFault::NullDeref { addr });
        }
        if (HEAP_BASE..STACK_BASE).contains(&addr) {
            // Heap accesses must land in an allocation; freed ones fault.
            match self.heap_alloc_containing(addr) {
                Some((_, _, true)) => {}
                Some((_, _, false)) => return Err(RuntimeFault::UseAfterFree { addr }),
                None => return Err(RuntimeFault::Unmapped { addr }),
            }
        }
        if self.segment_for(addr, len).is_none() {
            return Err(RuntimeFault::Unmapped { addr });
        }
        Ok(())
    }

    /// Loads `width` bytes little-endian from `addr`.
    ///
    /// # Errors
    ///
    /// Faults on null, unmapped, or freed addresses.
    pub fn load(&self, addr: u64, width: Width) -> Result<u64, RuntimeFault> {
        let len = width.bytes();
        self.check(addr, len)?;
        let seg = self.segment_for(addr, len).expect("checked above");
        let mut buf = [0u8; 8];
        buf[..len as usize].copy_from_slice(seg.slice(addr, len));
        Ok(u64::from_le_bytes(buf))
    }

    /// Stores the low `width` bytes of `value` little-endian at `addr`.
    ///
    /// # Errors
    ///
    /// Faults on null, unmapped, or freed addresses.
    pub fn store(&mut self, addr: u64, width: Width, value: u64) -> Result<(), RuntimeFault> {
        let len = width.bytes();
        self.check(addr, len)?;
        let bytes = value.to_le_bytes();
        let seg = self.segment_for_mut(addr, len).expect("checked above");
        seg.slice_mut(addr, len)
            .copy_from_slice(&bytes[..len as usize]);
        Ok(())
    }

    /// Copies out every mapped byte as `(addr, value)` runs — used by the
    /// REPT baseline to obtain a "core dump" of final memory.
    pub fn dump(&self) -> Vec<(u64, Vec<u8>)> {
        let mut out = vec![
            (self.globals.base, self.globals.data.clone()),
            (self.heap.base, self.heap.data.clone()),
        ];
        let mut tids: Vec<_> = self.stacks.keys().copied().collect();
        tids.sort_unstable();
        for t in tids {
            let s = &self.stacks[&t];
            out.push((s.base, s.data.clone()));
        }
        out.retain(|(_, d)| !d.is_empty());
        out
    }

    /// Total mapped bytes across all segments.
    pub fn mapped_bytes(&self) -> usize {
        self.globals.data.len()
            + self.heap.data.len()
            + self.stacks.values().map(|s| s.data.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Program;

    fn empty_mem() -> Memory {
        Memory::new(&Program::default())
    }

    #[test]
    fn heap_alloc_and_rw() {
        let mut m = empty_mem();
        let p = m.heap_alloc(32);
        assert_eq!(p, HEAP_BASE);
        m.store(p + 4, Width::W32, 0xdead_beef).unwrap();
        assert_eq!(m.load(p + 4, Width::W32).unwrap(), 0xdead_beef);
        assert_eq!(m.load(p, Width::W32).unwrap(), 0, "fresh memory is zeroed");
    }

    #[test]
    fn null_deref_faults() {
        let m = empty_mem();
        assert!(matches!(
            m.load(0, Width::W8),
            Err(RuntimeFault::NullDeref { .. })
        ));
        assert!(matches!(
            m.load(NULL_GUARD - 1, Width::W8),
            Err(RuntimeFault::NullDeref { .. })
        ));
    }

    #[test]
    fn use_after_free_faults_but_overflow_is_latent() {
        let mut m = empty_mem();
        let a = m.heap_alloc(16);
        let b = m.heap_alloc(16);
        // Overflow from a into b: silent corruption (latent bug fuel).
        m.store(a + 20, Width::W32, 7).unwrap();
        assert_eq!(m.load(b + 4, Width::W32).unwrap(), 7);
        m.heap_free(a).unwrap();
        assert!(matches!(
            m.load(a, Width::W8),
            Err(RuntimeFault::UseAfterFree { .. })
        ));
        // b still fine.
        assert!(m.load(b, Width::W8).is_ok());
    }

    #[test]
    fn double_free_faults() {
        let mut m = empty_mem();
        let a = m.heap_alloc(8);
        m.heap_free(a).unwrap();
        assert!(matches!(
            m.heap_free(a),
            Err(RuntimeFault::InvalidFree { .. })
        ));
        assert!(matches!(
            m.heap_free(a + 4),
            Err(RuntimeFault::InvalidFree { .. })
        ));
    }

    #[test]
    fn unmapped_heap_hole_faults() {
        let mut m = empty_mem();
        let _ = m.heap_alloc(16);
        assert!(matches!(
            m.load(HEAP_BASE + 4096, Width::W8),
            Err(RuntimeFault::Unmapped { .. })
        ));
    }

    #[test]
    fn stack_frames_push_and_pop() {
        let mut m = empty_mem();
        let mark = m.stack_watermark(0);
        let a = m.stack_alloc(0, 64);
        m.store(a, Width::W64, 42).unwrap();
        assert_eq!(m.load(a, Width::W64).unwrap(), 42);
        m.stack_restore(0, mark);
        // Released and re-zeroed on reuse.
        let b = m.stack_alloc(0, 64);
        assert_eq!(b, a);
        assert_eq!(m.load(b, Width::W64).unwrap(), 0);
    }

    #[test]
    fn thread_stacks_are_disjoint() {
        let mut m = empty_mem();
        let a = m.stack_alloc(0, 16);
        let b = m.stack_alloc(1, 16);
        assert_eq!(b - a, STACK_STRIDE);
        m.store(a, Width::W32, 1).unwrap();
        m.store(b, Width::W32, 2).unwrap();
        assert_eq!(m.load(a, Width::W32).unwrap(), 1);
    }

    #[test]
    fn dump_covers_mapped_memory() {
        let mut m = empty_mem();
        let p = m.heap_alloc(8);
        m.store(p, Width::W8, 0xaa).unwrap();
        let dump = m.dump();
        assert!(dump
            .iter()
            .any(|(base, d)| *base == HEAP_BASE && d[0] == 0xaa));
        assert!(m.mapped_bytes() >= 8);
    }
}
