//! Facade crate for the Execution Reconstruction (ER) reproduction.
//!
//! ER (Zuo et al., PLDI 2021) reproduces production failures by combining
//! always-on hardware control-flow tracing, *shepherded symbolic execution*
//! along the recorded trace, and *key data value selection*, which records
//! a few cheap data values on later failure reoccurrences to break solver
//! stalls. This crate re-exports every workspace crate under one roof so
//! that examples and integration tests can `use er::...`:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`minilang`] | `er-minilang` | the language, IR, and tracing interpreter |
//! | [`pt`] | `er-pt` | the software Intel-PT model |
//! | [`solver`] | `er-solver` | the bitvector + array constraint solver |
//! | [`symex`] | `er-symex` | the shepherded symbolic executor |
//! | [`core`] | `er-core` | ER itself: graph analysis, selection, the loop |
//! | [`baselines`] | `er-baselines` | rr-style record/replay, REPT-style recovery |
//! | [`invariants`] | `er-invariants` | Daikon/MIMIC-style localization |
//! | [`workloads`] | `er-workloads` | the 13 Table-1 bug programs |
//! | [`fleet`] | `er-fleet` | fleet simulation: ingestion, triage, scheduling |
//! | [`chaos`] | `er-chaos` | seeded fault injection across the pipeline's failure domains |
//!
//! # End-to-end example
//!
//! ```
//! use er::core::deploy::Deployment;
//! use er::core::reconstruct::{Outcome, Reconstructor};
//! use er::minilang::{compile, env::Env};
//!
//! // A service that crashes on a specific (unknown to us) request value.
//! let program = compile(
//!     r#"
//!     fn main() {
//!         let request: u32 = input_u32(0);
//!         if request % 1000 == 77 { abort("bad request"); }
//!         print(request);
//!     }
//!     "#,
//! )?;
//! // Production traffic: request k on run k.
//! let deployment = Deployment::new(program, |run| {
//!     let mut env = Env::new();
//!     env.push_input(0, &(run as u32).to_le_bytes());
//!     env
//! });
//! // ER watches traces, waits for the failure, and solves for an input.
//! let report = Reconstructor::default().reconstruct(&deployment);
//! let Outcome::Reproduced(test_case) = &report.outcome else { unreachable!() };
//! let value = u32::from_le_bytes(test_case.inputs[0].1[..4].try_into().unwrap());
//! assert_eq!(value % 1000, 77);
//! assert!(test_case.verify(deployment.program()).reproduced());
//! # Ok::<(), er::minilang::CompileError>(())
//! ```

pub use er_baselines as baselines;
pub use er_chaos as chaos;
pub use er_core as core;
pub use er_fleet as fleet;
pub use er_invariants as invariants;
pub use er_minilang as minilang;
pub use er_pt as pt;
pub use er_solver as solver;
pub use er_symex as symex;
pub use er_workloads as workloads;
