//! `er-cli` — command-line front end for the ER reproduction.
//!
//! ```console
//! $ er-cli run program.msl --input 0:0a000000
//! $ er-cli trace program.msl --input 0:0a000000 --events 20
//! $ er-cli workloads
//! $ er-cli reconstruct --workload SQLite-7be932d
//! ```

use er::core::reconstruct::{Outcome, Reconstructor};
use er::minilang::env::Env;
use er::minilang::interp::{Machine, RunOutcome, SchedConfig};
use er::minilang::ir::Program;
use er::pt::sink::{PtConfig, PtSink};
use er::workloads::{all, by_name, Scale};
use std::process::ExitCode;

const USAGE: &str = "\
er-cli — Execution Reconstruction demo driver

USAGE:
    er-cli run <file.msl> [--input SRC:HEXBYTES]... [--seed N] [--quantum N]
    er-cli trace <file.msl> [--input SRC:HEXBYTES]... [--events N]
    er-cli workloads
    er-cli reconstruct --workload <NAME> [--full]
    er-cli help

Programs are written in the mini systems language (see crates/minilang).
--input pushes bytes onto a numbered input stream, e.g. --input 0:2a000000
feeds the little-endian u32 42 to stream 0.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..], false),
        Some("trace") => cmd_run(&args[1..], true),
        Some("workloads") => cmd_workloads(),
        Some("reconstruct") => cmd_reconstruct(&args[1..]),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_inputs(args: &[String]) -> Result<Env, String> {
    let mut env = Env::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--input" {
            let spec = args
                .get(i + 1)
                .ok_or_else(|| "--input needs SRC:HEXBYTES".to_string())?;
            let (src, hex) = spec
                .split_once(':')
                .ok_or_else(|| format!("bad --input `{spec}`: expected SRC:HEXBYTES"))?;
            let source: u32 = src.parse().map_err(|_| format!("bad stream id `{src}`"))?;
            if hex.len() % 2 != 0 || !hex.chars().all(|c| c.is_ascii_hexdigit()) {
                return Err(format!("bad hex payload `{hex}`"));
            }
            let bytes: Vec<u8> = (0..hex.len())
                .step_by(2)
                .map(|k| u8::from_str_radix(&hex[k..k + 2], 16).expect("validated hex"))
                .collect();
            env.push_input(source, &bytes);
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(env)
}

fn load_program(path: &str) -> Result<Program, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    er::minilang::compile(&source).map_err(|e| format!("{path}: {e}"))
}

fn sched_from(args: &[String]) -> SchedConfig {
    SchedConfig {
        quantum: flag_value(args, "--quantum")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1_000),
        seed: flag_value(args, "--seed")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1),
        max_instrs: 500_000_000,
    }
}

fn cmd_run(args: &[String], traced: bool) -> Result<(), String> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| format!("missing program file\n\n{USAGE}"))?;
    let program = load_program(path)?;
    let env = parse_inputs(args)?;
    let sched = sched_from(args);

    if traced {
        let report = Machine::with_sink(&program, env, PtSink::new(PtConfig::default()))
            .with_sched(sched)
            .run();
        let stats = report.sink.stats();
        let trace = report.sink.finish();
        println!("outcome: {}", describe(&report.outcome));
        println!(
            "instructions: {}  branches: {}  trace bytes: {}",
            report.instr_count, stats.branches, stats.bytes
        );
        let decoded = trace.decode().map_err(|e| e.to_string())?;
        let n: usize = flag_value(args, "--events")
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        println!("first {n} decoded events:");
        for ev in decoded.events.iter().take(n) {
            println!("  {ev:?}");
        }
        if decoded.events.len() > n {
            println!("  ... and {} more", decoded.events.len() - n);
        }
    } else {
        let report = Machine::new(&program, env).with_sched(sched).run();
        println!("outcome: {}", describe(&report.outcome));
        println!("instructions: {}", report.instr_count);
        for v in &report.output {
            println!("output: {v}");
        }
    }
    Ok(())
}

fn describe(outcome: &RunOutcome) -> String {
    match outcome {
        RunOutcome::Completed => "completed".into(),
        RunOutcome::Failure(f) => format!("FAILURE: {f}"),
    }
}

fn cmd_workloads() -> Result<(), String> {
    println!(
        "{:<22} {:<18} {:<28} {:>3} {:>7}",
        "NAME", "APP", "BUG TYPE", "MT", "#OCCUR"
    );
    for w in all() {
        println!(
            "{:<22} {:<18} {:<28} {:>3} {:>7}",
            w.name,
            w.app,
            w.bug_type,
            if w.multithreaded { "Y" } else { "N" },
            w.expected_occurrences
        );
    }
    Ok(())
}

fn cmd_reconstruct(args: &[String]) -> Result<(), String> {
    let name = flag_value(args, "--workload")
        .ok_or_else(|| format!("--workload <NAME> required (see `er-cli workloads`)\n\n{USAGE}"))?;
    let workload = by_name(name).ok_or_else(|| format!("unknown workload `{name}`"))?;
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::FULL
    } else {
        Scale::TEST
    };
    println!(
        "reconstructing {} ({}, {})...",
        workload.name, workload.app, workload.bug_type
    );
    let deployment = workload.deployment(scale);
    let report = Reconstructor::new(workload.er_config()).reconstruct(&deployment);
    for it in &report.iterations {
        println!(
            "  occurrence {}: run {}, {} instrs, symbex {:?}{}",
            it.occurrence,
            it.run_index,
            it.instr_count,
            it.symbex_wall,
            match &it.stalled {
                Some(s) => format!(
                    " — stalled ({s}); recording {} new site(s)",
                    it.sites_selected
                ),
                None => " — completed".into(),
            }
        );
    }
    match &report.outcome {
        Outcome::Reproduced(tc) => {
            println!(
                "reproduced in {} occurrence(s); test case: {} bytes over {} stream(s)",
                report.occurrences,
                tc.input_bytes(),
                tc.inputs.len()
            );
            let verdict = tc.verify(deployment.program());
            println!("replay verification: {verdict:?}");
            Ok(())
        }
        Outcome::GaveUp(reason) => Err(format!("reconstruction gave up: {reason:?}")),
    }
}
