//! The paper's running example (Fig. 3) end-to-end.
//!
//! ```c
//! uint32 V[256] = {0};
//! foo(uint32 a, uint32 b, uint32 c, uint32 d) {
//!   uint32 x = (a + b);
//!   if (x < 256 && c < 256 && d < 256) {
//!     V[x] = 1;
//!     if (V[c] == 0)     // x != c
//!       V[c] = 512;
//!     V[V[x]] = x;
//!     if (c < d)         // d != c
//!       if (V[V[d]] == x)
//!         abort();
//!   }
//! }
//! ```
//!
//! The paper walks `foo(0, 2, 0, 2)` through three occurrences: the first
//! stalls and records `{x, λc}`, the second stalls and adds `λd`, the third
//! reproduces. This test runs the same program through this repository's
//! pipeline and checks the same walkthrough: occurrence 1 stalls on the
//! write chain and records two values, occurrence 2 stalls on the V[V[d]]
//! read and records one more, occurrence 3 reproduces — with the generated
//! arguments satisfying the paper's derived condition x == d.

use er::core::deploy::Deployment;
use er::core::reconstruct::{ErConfig, Outcome, Reconstructor};
use er::minilang::compile;
use er::minilang::env::Env;
use er::solver::solve::Budget;
use er::symex::SymConfig;

const FIG3: &str = r#"
global V: [u32; 256];

fn foo(a: u32, b: u32, c: u32, d: u32) {
    let x: u32 = a + b;
    if x < 256 && c < 256 && d < 256 {
        V[x] = 1;
        if V[c] == 0 {
            V[c] = 512;
        }
        V[V[x]] = x;
        if c < d {
            if V[V[d]] == x {
                abort("paper fig 3");
            }
        }
    }
}

fn main() {
    let a: u32 = input_u32(0);
    let b: u32 = input_u32(0);
    let c: u32 = input_u32(0);
    let d: u32 = input_u32(0);
    foo(a, b, c, d);
    print(0);
}
"#;

fn fig3_env(a: u32, b: u32, c: u32, d: u32) -> Env {
    let mut env = Env::new();
    for v in [a, b, c, d] {
        env.push_input(0, &v.to_le_bytes());
    }
    env
}

#[test]
fn fig3_crashes_exactly_when_the_paper_says() {
    let program = compile(FIG3).unwrap();
    // The paper's failing call: foo(0, 2, 0, 2) aborts (x == d == 2,
    // V[V[d]] == V[1] == ... == x after the writes).
    let crash = er::minilang::interp::Machine::new(&program, fig3_env(0, 2, 0, 2)).run();
    assert!(
        matches!(crash.outcome, er::minilang::interp::RunOutcome::Failure(_)),
        "{:?}",
        crash.outcome
    );
    // A non-aliasing call completes.
    let ok = er::minilang::interp::Machine::new(&program, fig3_env(5, 5, 1, 30)).run();
    assert!(matches!(
        ok.outcome,
        er::minilang::interp::RunOutcome::Completed
    ));
}

#[test]
fn fig3_reconstructs_through_the_iterative_loop() {
    let program = compile(FIG3).unwrap();
    let deployment = Deployment::new(program, |run| {
        // Production traffic: mostly benign calls, the paper's failing
        // argument pattern every 5th run.
        if run % 5 == 4 {
            fig3_env(0, 2, 0, 2)
        } else {
            let a = (run % 100) as u32;
            fig3_env(a, 2, 1, 57)
        }
    });
    // Budget small enough that the V[V[x]] / V[V[d]] chains stall, as in
    // the paper's walkthrough.
    let config = ErConfig {
        sym: SymConfig {
            solver_budget: Budget {
                max_conflicts: 5_000,
                max_array_cells: 900,
                max_clauses: 400_000,
            },
            max_steps: 10_000_000,
            always_concretize: false,
            ..SymConfig::default()
        },
        final_budget: Budget {
            max_conflicts: 50_000,
            max_array_cells: 900,
            max_clauses: 400_000,
        },
        ..ErConfig::default()
    };
    let report = Reconstructor::new(config).reconstruct(&deployment);
    let Outcome::Reproduced(tc) = &report.outcome else {
        panic!("fig 3 must reproduce: {:?}", report.outcome);
    };

    // The paper's exact walkthrough (§3.3.4): the first occurrence stalls
    // on the V[V[x]] chain and records {x, λc}; the second stalls on
    // V[V[d]] and adds λd; the third reproduces.
    assert_eq!(report.occurrences, 3, "the paper's three-occurrence regime");
    assert!(report.iterations[0].stalled.is_some());
    assert!(
        report.iterations[0].longest_chain > 0,
        "V's write chain drives the first selection"
    );
    assert_eq!(
        report.iterations[0].sites_selected, 2,
        "first iteration records {{x, λc}}"
    );
    assert!(report.iterations[1].stalled.is_some());
    assert_eq!(
        report.iterations[1].sites_selected, 1,
        "second iteration adds λd"
    );
    assert!(report.iterations[2].stalled.is_none(), "third completes");
    // Recording stays small — the paper records 12 bytes naively, fewer
    // after minimization; allow some slack for the byte-granular model.
    let recorded = report.iterations[0].recorded_bytes;
    assert!(
        recorded <= 64,
        "recording set should be a handful of values, got {recorded} bytes"
    );

    // The generated arguments satisfy the paper's derived conditions:
    // x = a + b < 256, c < 256, d < 256, V-aliasing makes the abort fire.
    let bytes = &tc.inputs[0].1;
    let word = |i: usize| u32::from_le_bytes(bytes[4 * i..4 * i + 4].try_into().unwrap());
    let (a, b, c, d) = (word(0), word(1), word(2), word(3));
    let x = a.wrapping_add(b);
    assert!(x < 256 && c < 256 && d < 256, "branch conditions hold");
    assert!(c < d, "the c < d branch was taken");
    // And, the paper's punchline: the failure requires x == d.
    assert_eq!(x, d, "the abort fires exactly when x == d");
    assert!(tc.verify(deployment_program(tc)).reproduced());
}

/// Helper: rebuild the program for verification (the test case carries no
/// program reference).
fn deployment_program(_tc: &er::core::TestCase) -> &'static er::minilang::ir::Program {
    use std::sync::OnceLock;
    static PROGRAM: OnceLock<er::minilang::ir::Program> = OnceLock::new();
    PROGRAM.get_or_init(|| compile(FIG3).unwrap())
}
