//! Integration tests over the Table-1 workload suite: every bug must be
//! reproducible with the paper's occurrence counts, and the generated test
//! cases must replay-verify on the uninstrumented programs.

use er::core::Reconstructor;
use er::workloads::{all, by_name, Scale};

/// The two single-occurrence rows (paper: 2/13 reproduce on first attempt).
#[test]
fn single_occurrence_workloads() {
    for name in ["Libpng-2004-0597", "Bash-108885"] {
        let w = by_name(name).unwrap();
        let report = Reconstructor::new(w.er_config()).reconstruct(&w.deployment(Scale::TEST));
        assert!(report.reproduced(), "{name}: {:?}", report.outcome);
        assert_eq!(report.occurrences, 1, "{name}");
        assert!(report.iterations[0].stalled.is_none());
    }
}

/// A representative data-requiring single-threaded workload per bug class.
#[test]
fn staged_workloads_match_expected_occurrences() {
    for name in ["SQLite-7be932d", "Objdump-2018-6323", "Nasm-2004-1287"] {
        let w = by_name(name).unwrap();
        let report = Reconstructor::new(w.er_config()).reconstruct(&w.deployment(Scale::TEST));
        assert!(report.reproduced(), "{name}: {:?}", report.outcome);
        assert_eq!(
            report.occurrences, w.expected_occurrences,
            "{name}: occurrence count drifted"
        );
        // Every stalled iteration must have selected something to record.
        for it in &report.iterations[..report.iterations.len() - 1] {
            assert!(it.stalled.is_some(), "{name}: early iterations stall");
        }
    }
}

/// The deepest pipeline: PHP-74194 (the paper's Fig. 5 subject, 10
/// occurrences).
#[test]
fn php_74194_needs_ten_occurrences() {
    let w = by_name("PHP-74194").unwrap();
    let report = Reconstructor::new(w.er_config()).reconstruct(&w.deployment(Scale::TEST));
    assert!(report.reproduced(), "{:?}", report.outcome);
    assert_eq!(report.occurrences, 10);
    // Recording accumulates monotonically.
    let mut last = 0;
    for it in &report.iterations {
        let total = last + it.sites_selected;
        assert!(total >= last);
        last = total;
    }
    assert!(last >= 9, "at least one site per stalled iteration");
}

/// The multithreaded rows reproduce with schedule + input reconstruction.
#[test]
fn multithreaded_workloads_reproduce() {
    for name in ["Memcached-2019-11596", "Pbzip2"] {
        let w = by_name(name).unwrap();
        assert!(w.multithreaded);
        let report = Reconstructor::new(w.er_config()).reconstruct(&w.deployment(Scale::TEST));
        assert!(report.reproduced(), "{name}: {:?}", report.outcome);
        assert_eq!(report.occurrences, w.expected_occurrences, "{name}");
        let tc = report.outcome.test_case().unwrap();
        assert!(tc.verify(w.deployment(Scale::TEST).program()).reproduced());
    }
}

/// Suite-wide statistics match the paper's headline claims.
#[test]
#[ignore = "runs the whole suite; exercised by the table1 binary and CI-style runs"]
fn full_suite_statistics() {
    let mut total = 0u32;
    let mut singles = 0;
    for w in all() {
        let report = Reconstructor::new(w.er_config()).reconstruct(&w.deployment(Scale::TEST));
        assert!(report.reproduced(), "{}: {:?}", w.name, report.outcome);
        assert_eq!(report.occurrences, w.expected_occurrences, "{}", w.name);
        total += report.occurrences;
        if report.occurrences == 1 {
            singles += 1;
        }
    }
    let avg = f64::from(total) / 13.0;
    assert!((3.0..4.0).contains(&avg), "paper average ~3.5, got {avg}");
    assert_eq!(singles, 2, "paper: 2/13 single-occurrence");
}
