//! Integration tests comparing ER against the record/replay and REPT
//! baselines — the quantitative backbone of the paper's §2 taxonomy.

use er::baselines::rept::{ConcreteTape, ReptAnalysis};
use er::baselines::rr::RrRecorder;
use er::minilang::compile;
use er::minilang::env::Env;
use er::minilang::interp::{Machine, RunOutcome, SchedConfig};
use er::pt::sink::{PtConfig, PtSink};

#[test]
fn pt_trace_is_much_smaller_than_rr_log_per_event_but_traces_everything() {
    // A branchy, input-light program: PT records every branch for ~1 bit;
    // rr records nothing per branch but pays per preemption.
    let program = compile(
        r#"
        fn main() {
            let seed: u32 = input_u32(0);
            let h: u32 = seed;
            for i: u32 = 0; i < 50000; i = i + 1 {
                if (h & 1) == 1 { h = h * 3 + 1; } else { h = h / 2; }
                if h == 0 { h = seed + i; }
            }
            print(h);
        }
        "#,
    )
    .unwrap();
    let sched = SchedConfig::default();
    let mk_env = || {
        let mut env = Env::new();
        env.push_input(0, &27u32.to_le_bytes());
        env
    };
    let pt = Machine::with_sink(&program, mk_env(), PtSink::new(PtConfig::default()))
        .with_sched(sched)
        .run();
    let pt_stats = pt.sink.stats();
    assert!(pt_stats.branches >= 100_000);
    // About one bit per branch: comfortably under 2 bits.
    assert!(
        f64::from(u32::try_from(pt_stats.bytes).unwrap())
            / f64::from(u32::try_from(pt_stats.branches).unwrap())
            < 0.25,
        "bytes/branch = {}",
        pt_stats.bytes as f64 / pt_stats.branches as f64
    );

    let rr = Machine::with_sink(&program, mk_env(), RrRecorder::new(sched))
        .with_sched(sched)
        .run();
    let log = rr.sink.finish();
    // rr recorded only the input and preemptions, no branches...
    assert!(log.events.len() < 1000);
    // ...so its log cannot drive instruction-level analyses, while the PT
    // trace decodes to every branch outcome.
    let decoded = pt.sink.finish().decode().unwrap();
    assert_eq!(decoded.branch_count() as u64, pt_stats.branches);
}

#[test]
fn rr_replay_is_exact_while_er_inputs_are_equivalent_not_identical() {
    let program = compile(
        r#"
        fn main() {
            let x: u32 = input_u32(0);
            if x % 100 == 42 { abort("boom"); }
            print(x);
        }
        "#,
    )
    .unwrap();
    let sched = SchedConfig::default();
    let mut env = Env::new();
    env.push_input(0, &142u32.to_le_bytes());
    let report = Machine::with_sink(&program, env, RrRecorder::new(sched))
        .with_sched(sched)
        .run();
    let RunOutcome::Failure(f) = &report.outcome else {
        panic!("142 % 100 == 42 crashes")
    };
    // rr: byte-exact replay.
    let log = report.sink.finish();
    let replay = log.replay(&program);
    let RunOutcome::Failure(f2) = replay.outcome else {
        panic!()
    };
    assert!(f2.same_failure(f));
    let rr_input = log.rebuild_env();
    assert_eq!(rr_input.stream_data(0).unwrap(), 142u32.to_le_bytes());

    // ER: the generated input satisfies the constraint but may differ.
    let deployment = er::core::Deployment::new(program.clone(), |_| {
        let mut env = Env::new();
        env.push_input(0, &142u32.to_le_bytes());
        env
    });
    let er_report = er::core::Reconstructor::default().reconstruct(&deployment);
    let tc = er_report.outcome.test_case().expect("reproduced");
    let x = u32::from_le_bytes(tc.inputs[0].1[..4].try_into().unwrap());
    assert_eq!(x % 100, 42, "equivalent input class");
    assert!(tc.verify(&program).reproduced());
}

#[test]
fn rept_degrades_on_overwritten_state_while_er_replays_exactly() {
    // Each iteration consumes fresh input into the *same* registers, so by
    // crash time the old values are gone from both registers and the ring
    // (overwritten every 16 iterations): the exact overwriting the paper
    // blames for REPT's decay. The crash itself depends only on the final
    // input word, so ER's reconstruction stays cheap.
    let src = r#"
        global RING: [u32; 16];
        fn main() {
            let acc: u32 = 0;
            for i: u32 = 0; i < 3000; i = i + 1 {
                let v: u32 = input_u32(0);
                acc = (acc ^ v) * 2654435761;
                RING[i % 16] = acc;
            }
            let last: u32 = input_u32(0);
            if last % 97 == 13 { abort("boom"); }
            print(acc);
        }
    "#;
    let mk_env = || {
        let mut env = Env::new();
        for i in 0..3000u32 {
            env.push_input(0, &(i.wrapping_mul(2654435761)).to_le_bytes());
        }
        env.push_input(0, &(13u32).to_le_bytes());
        env
    };
    let program = compile(src).unwrap();
    let tape = ConcreteTape::record(&program, mk_env(), 200_000).unwrap();
    assert!(tape.faulted);
    let report = ReptAnalysis::default().analyze(&tape, 30_000);
    assert!(
        report.degraded_rate() > 0.15,
        "overwritten inputs defeat reverse recovery: {report:?}"
    );

    // ER on the same failure: complete, verified reproduction.
    let deployment = er::core::Deployment::new(program.clone(), move |_| mk_env());
    let er_report = er::core::Reconstructor::default().reconstruct(&deployment);
    assert!(er_report.reproduced(), "{:?}", er_report.outcome);
}
