//! End-to-end integration tests: the full ER pipeline across crates.

use er::core::deploy::Deployment;
use er::core::reconstruct::{ErConfig, Outcome, Reconstructor};
use er::core::select::SelectorKind;
use er::minilang::compile;
use er::minilang::env::Env;
use er::minilang::error::FailureKind;
use er::solver::solve::Budget;
use er::symex::SymConfig;

fn deploy(src: &str, gen: impl Fn(u64) -> Env + Send + Sync + 'static) -> Deployment {
    Deployment::new(compile(src).expect("test program compiles"), gen)
}

#[test]
fn reconstructs_arithmetic_failure_and_verifies_replay() {
    let d = deploy(
        r#"
        fn main() {
            let a: u32 = input_u32(0);
            let b: u32 = input_u32(0);
            if a * a + b == 1234 {
                abort("hit");
            }
            print(a);
        }
        "#,
        |run| {
            let mut env = Env::new();
            let a = (run % 64) as u32;
            let b = if run % 9 == 5 { 1234 - a * a } else { 7 };
            env.push_input(0, &a.to_le_bytes());
            env.push_input(0, &b.to_le_bytes());
            env
        },
    );
    let report = Reconstructor::default().reconstruct(&d);
    let Outcome::Reproduced(tc) = &report.outcome else {
        panic!("expected reproduction, got {:?}", report.outcome);
    };
    assert!(tc.verify(d.program()).reproduced());
    assert_eq!(tc.expected.fault.kind(), FailureKind::Abort);
}

#[test]
fn latent_heap_corruption_reproduces() {
    // The overflow happens long before the crash; the failure site is an
    // allocator-header check, REPT-style recovery would have lost the
    // overflowing values by then.
    let d = deploy(
        r#"
        fn main() {
            let n: u32 = input_u32(0);
            let buf: u64 = alloc(32);
            let hdr: u64 = alloc(8);
            store64(hdr, 777);
            for i: u32 = 0; i < (n & 63); i = i + 1 {
                store8(buf + (i as u64), 66);
            }
            let h: u64 = 0;
            for i: u32 = 0; i < 5000; i = i + 1 {
                h = h + (i as u64);
            }
            print(h);
            let magic: u64 = load64(hdr);
            assert(magic == 777, "heap corrupted");
        }
        "#,
        |run| {
            let mut env = Env::new();
            let n: u32 = if run % 4 == 3 { 40 } else { 16 };
            env.push_input(0, &n.to_le_bytes());
            env
        },
    );
    let report = Reconstructor::default().reconstruct(&d);
    let Outcome::Reproduced(tc) = &report.outcome else {
        panic!("expected reproduction, got {:?}", report.outcome);
    };
    assert!(tc.verify(d.program()).reproduced());
    // The generated length must overflow the 32-byte buffer into the header.
    let n = u32::from_le_bytes(tc.inputs[0].1[..4].try_into().unwrap());
    assert!(n & 63 > 32, "generated n={n} must overflow");
}

#[test]
fn iterative_loop_records_and_converges() {
    let d = deploy(
        r#"
        global IDX: [u64; 512];
        fn main() {
            let a: u64 = input_u64(0);
            let b: u64 = input_u64(0);
            let i: u64 = a & 511;
            let j: u64 = b & 511;
            IDX[i] = 9;
            if IDX[j] == 9 {
                abort("aliased");
            }
            print(i);
        }
        "#,
        |run| {
            let mut env = Env::new();
            let a = run.wrapping_mul(2654435761) | 1;
            let b = if run % 6 == 1 { a } else { a ^ 2 };
            env.push_input(0, &a.to_le_bytes());
            env.push_input(0, &b.to_le_bytes());
            env
        },
    );
    let config = ErConfig {
        sym: SymConfig {
            solver_budget: Budget::small(),
            max_steps: 50_000_000,
            always_concretize: false,
            ..SymConfig::default()
        },
        final_budget: Budget::small(),
        ..ErConfig::default()
    };
    let report = Reconstructor::new(config).reconstruct(&d);
    assert!(report.reproduced(), "{:?}", report.outcome);
    assert!(report.occurrences >= 2, "must have stalled at least once");
    assert!(report.iterations[0].stalled.is_some());
    assert!(report.iterations[0].sites_selected > 0);
    let tc = report.outcome.test_case().unwrap();
    // The generated inputs must alias: a & 511 == b & 511.
    let a = u64::from_le_bytes(tc.inputs[0].1[..8].try_into().unwrap());
    let b = u64::from_le_bytes(tc.inputs[0].1[8..16].try_into().unwrap());
    assert_eq!(a & 511, b & 511, "generated keys must alias");
}

#[test]
fn multithreaded_use_after_free_reproduces() {
    let d = deploy(
        r#"
        global SLOT: u64;
        fn consumer() {
            let p: u64 = SLOT;
            let s: u64 = 0;
            for i: u64 = 0; i < 300; i = i + 1 { s = s + 1; }
            free(p);
            print(s);
        }
        fn main() {
            let key: u64 = input_u64(0);
            SLOT = alloc(16);
            let t: u64 = spawn consumer();
            let d: u64 = 0;
            for i: u64 = 0; i < 900; i = i + 1 { d = d + 1; }
            print(d);
            if (key & 7) == 3 {
                store64(SLOT, 1);
            }
            join(t);
        }
        "#,
        |run| {
            let mut env = Env::new();
            env.push_input(0, &run.to_le_bytes());
            env
        },
    );
    let report = Reconstructor::default().reconstruct(&d);
    let Outcome::Reproduced(tc) = &report.outcome else {
        panic!("expected reproduction, got {:?}", report.outcome);
    };
    assert_eq!(tc.expected.fault.kind(), FailureKind::MemoryCorruption);
    assert!(tc.verify(d.program()).reproduced());
}

#[test]
fn random_selection_fails_where_key_value_succeeds() {
    // A two-key aliasing bug plus decoy inputs: random recording wastes its
    // budget, key-value selection converges.
    let src = r#"
        global DECOYS: [u64; 64];
        global TBL: [u64; 512];
        fn main() {
            DECOYS[0] = input_u64(2) ^ 1;
            DECOYS[1] = input_u64(2) ^ 2;
            DECOYS[2] = input_u64(2) ^ 3;
            DECOYS[3] = input_u64(2) ^ 4;
            DECOYS[4] = input_u64(2) ^ 5;
            DECOYS[5] = input_u64(2) ^ 6;
            DECOYS[6] = input_u64(2) ^ 7;
            DECOYS[7] = input_u64(2) ^ 8;
            DECOYS[8] = input_u64(2) ^ 9;
            DECOYS[9] = input_u64(2) ^ 10;
            DECOYS[10] = input_u64(2) ^ 11;
            DECOYS[11] = input_u64(2) ^ 12;
            let a: u64 = input_u64(0) & 511;
            let b: u64 = input_u64(0) & 511;
            TBL[a] = 6;
            if TBL[b] == 6 { abort("hit"); }
            print(a);
        }
    "#;
    let gen = |run: u64| {
        let mut env = Env::new();
        for i in 0..12u64 {
            env.push_input(2, &(run ^ (i << 40) | 1).to_le_bytes());
        }
        let a = run.wrapping_mul(97) | 1;
        let b = if run % 5 == 2 { a } else { a ^ 2 };
        env.push_input(0, &a.to_le_bytes());
        env.push_input(0, &b.to_le_bytes());
        env
    };
    let tight = |selector| ErConfig {
        sym: SymConfig {
            solver_budget: Budget::small(),
            max_steps: 50_000_000,
            always_concretize: false,
            ..SymConfig::default()
        },
        final_budget: Budget::small(),
        selector,
        max_occurrences: 3,
        ..ErConfig::default()
    };
    let kv = Reconstructor::new(tight(SelectorKind::KeyValue)).reconstruct(&deploy(src, gen));
    assert!(kv.reproduced(), "{:?}", kv.outcome);

    let mut random_successes = 0;
    for seed in 0..3 {
        let r =
            Reconstructor::new(tight(SelectorKind::Random { seed })).reconstruct(&deploy(src, gen));
        if r.reproduced() {
            random_successes += 1;
        }
    }
    assert!(
        random_successes < 3,
        "random selection should usually miss the key values"
    );
}

#[test]
fn deployment_without_failures_gives_up_cleanly() {
    let d = deploy("fn main() { print(1); }", |_| Env::new());
    let config = ErConfig {
        max_runs_per_occurrence: 10,
        ..ErConfig::default()
    };
    let report = Reconstructor::new(config).reconstruct(&d);
    assert!(!report.reproduced());
    assert_eq!(report.occurrences, 0);
}
